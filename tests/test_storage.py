"""The ``repro.storage`` layer: budgets, LRU spill, and the config surface.

Four families of guarantees:

* **SpillStore** — payloads past the budget move LRU-first to sealed
  segment files and rehydrate as read-only ``memoryview`` slices, with
  exact byte accounting, across discard/reset/cleanup lifecycles.
* **ChunkStore** — the A-side receive store produces a byte-identical
  merge whether or not its chunks spilled, and its accounting properties
  mirror the underlying SpillStore.
* **Config plumbing** — :class:`StorageConfig` validates its knobs and
  ``DataMPIConf`` keeps the legacy ``cache_bytes``/``spill_bytes``
  integers mirrored against it (synthesizing, warning, or refusing on
  disagreement).
* **Acceptance** — an over-budget sort matrix cell produces the same
  output checksum as its in-memory twin on every transport backend,
  with ``bytes_spilled > 0`` and no leaked segment files.
"""

import importlib
import os
import sys
import time
import warnings

import pytest

from repro.bigdatabench import TextGenerator
from repro.common.errors import ConfigError, DataMPIError
from repro.common.kv import encode_stream, record_size
from repro.datampi import DataMPIConf
from repro.experiments.matrix import execute_cell
from repro.experiments.spec import CellSpec, ExperimentSpec
from repro.mpi.transport import available_transports
from repro.storage import (
    DEFAULT_SPILL_BYTES,
    ChunkStore,
    KVCache,
    SpillStore,
    StorageConfig,
)
from repro.workloads import text_sort_datampi_result

ALL_BACKENDS = ("thread", "shm", "inline", "tcp")


def _segment_files(directory) -> list[str]:
    return [name for name in os.listdir(directory) if name.endswith(".seg")]


class TestSpillStore:
    def test_resident_until_budget_exceeded(self):
        store = SpillStore(budget_bytes=100)
        store.put("a", b"x" * 40)
        store.put("b", b"y" * 40)
        assert not store.is_spilled("a") and not store.is_spilled("b")
        assert store.in_memory_bytes == 80
        assert store.spills == 0
        store.cleanup()

    def test_lru_eviction_evicts_least_recently_used(self, tmp_path):
        store = SpillStore(budget_bytes=100, spill_dir=str(tmp_path))
        store.put("a", b"a" * 40)
        store.put("b", b"b" * 40)
        store.get("a")  # touch: "b" is now the LRU entry
        store.put("c", b"c" * 40)
        assert store.is_spilled("b")
        assert not store.is_spilled("a") and not store.is_spilled("c")
        store.cleanup()

    def test_rehydrated_bytes_identical(self, tmp_path):
        payloads = {f"k{i}": bytes([i]) * (200 + i) for i in range(8)}
        store = SpillStore(budget_bytes=256, spill_dir=str(tmp_path))
        for key, payload in payloads.items():
            store.put(key, payload)
        assert store.spills > 0
        for key, payload in payloads.items():
            view = store.get(key)
            assert isinstance(view, memoryview)
            assert bytes(view) == payload
        store.cleanup()

    def test_spilled_entries_stay_spilled_after_read(self, tmp_path):
        """A post-spill scan must not re-inflate the resident set — that
        is the whole point of a beyond-RAM store."""
        store = SpillStore(budget_bytes=64, spill_dir=str(tmp_path))
        store.put("old", b"x" * 60)
        store.put("new", b"y" * 60)
        assert store.is_spilled("old")
        resident_before = store.in_memory_bytes
        store.get("old")
        store.get("old")
        assert store.is_spilled("old")
        assert store.in_memory_bytes == resident_before
        assert store.spill_reads == 2
        store.cleanup()

    def test_oversized_entry_admitted_and_spilled(self, tmp_path):
        """Unlike the cache, the store never rejects: an entry larger
        than the whole budget is admitted and goes straight to disk."""
        store = SpillStore(budget_bytes=16, spill_dir=str(tmp_path))
        store.put("huge", b"z" * 1000)
        assert store.is_spilled("huge")
        assert bytes(store.get("huge")) == b"z" * 1000
        assert store.bytes_spilled == 1000
        store.cleanup()

    def test_zero_byte_entries_never_spill(self, tmp_path):
        store = SpillStore(budget_bytes=32, spill_dir=str(tmp_path))
        store.put("empty", b"")
        store.put("big", b"x" * 64)
        assert not store.is_spilled("empty")
        assert bytes(store.get("empty")) == b""
        store.cleanup()

    def test_memoryview_payloads_roundtrip(self, tmp_path):
        store = SpillStore(budget_bytes=32, spill_dir=str(tmp_path))
        backing = bytes(range(256))
        store.put("view", memoryview(backing)[10:120])
        store.put("pusher", b"p" * 64)
        assert store.is_spilled("view")
        assert bytes(store.get("view")) == backing[10:120]
        store.cleanup()

    def test_discard_resident_and_spilled(self, tmp_path):
        store = SpillStore(budget_bytes=64, spill_dir=str(tmp_path))
        store.put("old", b"x" * 60)
        store.put("new", b"y" * 60)
        assert store.discard("old")  # spilled
        assert store.discard("new")  # resident
        assert not store.discard("gone")
        assert store.in_memory_bytes == 0
        assert len(store) == 0
        store.cleanup()

    def test_size_of_answers_from_index(self, tmp_path):
        store = SpillStore(budget_bytes=16, spill_dir=str(tmp_path))
        store.put("k", b"x" * 40)
        assert store.size_of("k") == 40
        assert store.size_of("absent") is None
        assert store.spill_reads == 0  # no disk touch for metadata
        store.cleanup()

    def test_replacing_key_reaccounts(self):
        store = SpillStore(budget_bytes=1024)
        store.put("k", b"x" * 100)
        store.put("k", b"y" * 30)
        assert store.in_memory_bytes == 30
        assert bytes(store.get("k")) == b"y" * 30
        store.cleanup()

    def test_reset_deletes_segments_and_counters(self, tmp_path):
        store = SpillStore(budget_bytes=32, spill_dir=str(tmp_path))
        for index in range(4):
            store.put(index, b"x" * 30)
        assert _segment_files(tmp_path)
        store.reset()
        assert _segment_files(tmp_path) == []
        assert len(store) == 0
        assert store.bytes_spilled == 0 and store.spill_reads == 0
        # The store stays usable after a reset.
        store.put("again", b"y" * 50)
        assert store.is_spilled("again")
        assert bytes(store.get("again")) == b"y" * 50
        store.cleanup()

    def test_cleanup_removes_owned_directory(self):
        store = SpillStore(budget_bytes=8)  # no spill_dir: owned temp dir
        store.put("a", b"x" * 32)
        store.put("b", b"y" * 32)
        owned_dir = os.path.dirname(store.segment_files[0])
        assert os.path.isdir(owned_dir)
        store.cleanup()
        assert not os.path.exists(owned_dir)

    def test_cleanup_keeps_caller_supplied_directory(self, tmp_path):
        store = SpillStore(budget_bytes=8, spill_dir=str(tmp_path))
        store.put("a", b"x" * 32)
        store.cleanup()
        assert os.path.isdir(tmp_path)
        assert _segment_files(tmp_path) == []

    def test_shared_spill_dir_gets_unique_segment_names(self, tmp_path):
        """Many ranks may share one spill directory; their segment files
        must never collide."""
        stores = [SpillStore(budget_bytes=8, spill_dir=str(tmp_path))
                  for _ in range(3)]
        for index, store in enumerate(stores):
            store.put("k", bytes([index]) * 32)
        assert len(_segment_files(tmp_path)) == 3
        for index, store in enumerate(stores):
            assert bytes(store.get("k")) == bytes([index]) * 32
            store.cleanup()

    def test_budget_must_be_positive(self):
        with pytest.raises(DataMPIError, match="positive"):
            SpillStore(budget_bytes=0)

    def test_counters_mapping(self, tmp_path):
        store = SpillStore(budget_bytes=32, spill_dir=str(tmp_path))
        store.put("a", b"x" * 40)
        store.get("a")
        counters = store.counters
        assert counters["spill.bytes_spilled"] == 40
        assert counters["spill.reads"] == 1
        assert counters["spill.segments"] == 1
        store.cleanup()


class TestChunkStoreSpill:
    @staticmethod
    def _chunks():
        return [
            encode_stream([("b", 2), ("d", 4)]),
            encode_stream([("a", 1), ("c", 3)]),
            encode_stream([("a", 9), ("e", 5)]),
        ]

    def test_merge_identical_with_and_without_spill(self, tmp_path):
        """The canonical k-way merge must not depend on which chunks
        happened to spill — same records, same order, byte for byte."""
        resident = ChunkStore()
        spilling = ChunkStore(spill_threshold=8, spill_dir=str(tmp_path))
        for origin, chunk in enumerate(self._chunks()):
            resident.add(chunk, origin=(0, origin))
            spilling.add(chunk, origin=(0, origin))
        assert spilling.bytes_spilled > 0
        assert list(spilling.merged()) == list(resident.merged())
        resident.cleanup()
        spilling.cleanup()

    def test_raw_chunks_rehydrate_exact_bytes(self, tmp_path):
        store = ChunkStore(spill_threshold=8, spill_dir=str(tmp_path))
        chunks = self._chunks()
        for origin, chunk in enumerate(chunks):
            store.add(chunk, origin=(0, origin))
        assert store.raw_chunks() == chunks
        store.cleanup()

    def test_legacy_spilled_bytes_alias(self, tmp_path):
        store = ChunkStore(spill_threshold=8, spill_dir=str(tmp_path))
        store.add(b"0" * 64, origin=(0, 0))
        assert store.spilled_bytes == store.bytes_spilled > 0
        store.cleanup()


class TestKVCacheAccounting:
    def test_memoryview_charged_by_byte_length(self):
        """The ``record_size`` fix: a zero-copy view is charged its
        ``nbytes``, identically to the equivalent ``bytes`` payload."""
        payload = b"v" * 1000
        as_bytes = KVCache(None)
        as_view = KVCache(None)
        as_bytes.put("k", payload)
        as_view.put("k", memoryview(payload))
        assert as_view.size_of("k") == as_bytes.size_of("k")
        assert as_view.used_bytes >= 1000

    def test_record_size_memoryview_vs_bytes(self):
        payload = bytes(512)
        assert record_size("k", memoryview(payload)) == \
            record_size("k", payload)

    def test_budgeted_cache_evicts_views_correctly(self):
        cache = KVCache(capacity_bytes=record_size("a", bytes(100)) + 8)
        assert cache.put("a", memoryview(bytes(100)))
        assert cache.put("b", memoryview(bytes(100)))
        assert cache.get("a") is None  # evicted, not silently retained
        assert cache.evictions == 1


class TestStorageConfig:
    def test_factories_honor_fields(self, tmp_path):
        config = StorageConfig(cache_bytes=1 << 16, spill_threshold=128,
                               spill_dir=str(tmp_path))
        cache = config.make_cache()
        assert cache.capacity_bytes == 1 << 16
        store = config.make_store()
        store.add(b"z" * 256)
        assert store.bytes_spilled == 256
        assert _segment_files(tmp_path)
        store.cleanup()

    def test_defaults_are_unbounded_cache_default_spill(self):
        config = StorageConfig()
        assert config.cache_bytes is None
        assert config.spill_threshold == DEFAULT_SPILL_BYTES
        assert config.spill_dir is None

    def test_validation(self):
        with pytest.raises(ConfigError, match="cache_bytes"):
            StorageConfig(cache_bytes=0)
        with pytest.raises(ConfigError, match="spill_threshold"):
            StorageConfig(spill_threshold=0)

    def test_frozen(self):
        config = StorageConfig()
        with pytest.raises(Exception):
            config.spill_threshold = 1


class TestDataMPIConfStorage:
    def test_default_conf_synthesizes_storage(self):
        conf = DataMPIConf(num_o=1, num_a=1)
        assert conf.storage is not None
        assert conf.storage.cache_bytes is None
        assert conf.storage.spill_threshold == conf.spill_bytes

    def test_legacy_cache_bytes_warns_and_is_carried(self):
        with pytest.warns(DeprecationWarning, match="cache_bytes"):
            conf = DataMPIConf(num_o=1, num_a=1, cache_bytes=4096)
        assert conf.storage.cache_bytes == 4096

    def test_legacy_spill_bytes_carried_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            conf = DataMPIConf(num_o=1, num_a=1, spill_bytes=512)
        assert conf.storage.spill_threshold == 512

    def test_storage_mirrors_into_legacy_fields(self, tmp_path):
        storage = StorageConfig(cache_bytes=2048, spill_threshold=256,
                                spill_dir=str(tmp_path))
        conf = DataMPIConf(num_o=1, num_a=1, storage=storage)
        assert conf.cache_bytes == 2048
        assert conf.spill_bytes == 256
        assert conf.storage.spill_dir == str(tmp_path)

    def test_conflicting_cache_bytes_refused(self):
        with pytest.raises(ConfigError, match="disagrees"):
            DataMPIConf(num_o=1, num_a=1, cache_bytes=1024,
                        storage=StorageConfig(cache_bytes=2048))

    def test_conflicting_spill_bytes_refused(self):
        with pytest.raises(ConfigError, match="disagrees"):
            DataMPIConf(num_o=1, num_a=1, spill_bytes=1024,
                        storage=StorageConfig(spill_threshold=2048))

    def test_agreeing_legacy_fields_accepted(self):
        conf = DataMPIConf(num_o=1, num_a=1, spill_bytes=1024,
                           storage=StorageConfig(spill_threshold=1024))
        assert conf.storage.spill_threshold == 1024


class TestDeprecatedImportShims:
    @staticmethod
    def _fresh_import(module_name: str):
        saved = sys.modules.pop(module_name, None)
        try:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                return importlib.import_module(module_name)
        finally:
            if saved is not None:
                sys.modules[module_name] = saved

    def test_datampi_kvcache_shim(self):
        shim = self._fresh_import("repro.datampi.kvcache")
        assert shim.KVCache is KVCache

    def test_datampi_receiver_shim(self):
        shim = self._fresh_import("repro.datampi.receiver")
        assert shim.ChunkStore is ChunkStore
        assert shim.DEFAULT_SPILL_BYTES == DEFAULT_SPILL_BYTES


class TestOverBudgetAcceptance:
    """The PR's acceptance bar: a ``large``-scale sort cell whose shuffle
    exceeds the budget runs to a byte-identical checksum against its
    in-memory twin on every transport, reporting its spill traffic."""

    @pytest.fixture(params=[b for b in ALL_BACKENDS
                            if b in available_transports()])
    def backend(self, request):
        return request.param

    @staticmethod
    def _sort_spec(backend, spill_budget_bytes):
        cell = CellSpec(workload="text_sort", mode="common",
                        engine="datampi", scale="large", transport=backend)
        return cell, ExperimentSpec(name="spill-acceptance", cells=(cell,),
                                    spill_budget_bytes=spill_budget_bytes)

    def test_over_budget_cell_matches_in_memory(self, backend):
        cell, baseline_spec = self._sort_spec(backend, None)
        _, budget_spec = self._sort_spec(backend, 4096)
        baseline = execute_cell(cell, baseline_spec)
        budgeted = execute_cell(cell, budget_spec)
        assert baseline.status == budgeted.status == "ok"
        assert budgeted.output_checksum == baseline.output_checksum
        assert budgeted.bytes_spilled > 0
        assert budgeted.spill_reads > 0
        assert baseline.bytes_spilled == 0

    def test_no_segment_files_leak_after_run(self, backend, tmp_path,
                                             wait_until):
        """Job-level twin of the cell test with an observable spill dir:
        after the run returns, no segment file remains on disk."""
        lines = TextGenerator(seed=7).lines(1200)
        storage = StorageConfig(spill_threshold=4096, spill_dir=str(tmp_path))
        result = text_sort_datampi_result(lines, parallelism=3,
                                          transport=backend, storage=storage)
        assert result.counters["a.bytes_spilled"] > 0
        merged = [line for output in result.outputs for line in output]
        assert merged == sorted(lines)
        # Rank cleanup may trail the result gather on process transports.
        wait_until(lambda: not _segment_files(tmp_path), timeout=30,
                   message="run left segment files behind")

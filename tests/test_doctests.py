"""Run the public API's docstring examples as tests (tier-1).

Every module listed here carries runnable ``Examples:`` sections on its
public entry points — the same snippets ``docs/architecture.md`` and the
README teach from — so a drifting API breaks the build, not the reader.
"""

import doctest

import pytest

import repro.datampi.checkpoint
import repro.datampi.job
import repro.datampi.modes
import repro.experiments.spec
import repro.mpi.launcher
import repro.mpi.transport.base
import repro.serving.pool
import repro.storage.config
import repro.storage.kvcache
import repro.storage.spill

DOCTESTED_MODULES = [
    repro.datampi.checkpoint,
    repro.datampi.job,
    repro.datampi.modes,
    repro.experiments.spec,
    repro.mpi.launcher,
    repro.mpi.transport.base,
    repro.serving.pool,
    repro.storage.config,
    repro.storage.kvcache,
    repro.storage.spill,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in {module.__name__}"


def test_public_api_examples_are_present():
    """The docstring pass must not silently regress to example-free docs."""
    expectations = {
        repro.datampi.job: ("DataMPIConf", "DataMPIJob"),
        repro.datampi.modes: ("IterativeJob", "StreamingJob"),
        repro.storage.kvcache: ("KVCache",),
        repro.storage.spill: ("SpillStore",),
        repro.storage.config: ("StorageConfig",),
        repro.serving.pool: ("WorldPool",),
    }
    for module, names in expectations.items():
        for name in names:
            docstring = getattr(module, name).__doc__ or ""
            assert ">>>" in docstring, \
                f"{module.__name__}.{name} lost its runnable example"
    assert ">>>" in (repro.mpi.transport.base.get_transport.__doc__ or "")
    assert ">>>" in (repro.mpi.launcher.mpi_run.__doc__ or "")

"""The offline markdown link checker used by the CI docs job."""

import importlib.util
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_links", REPO_ROOT / "scripts" / "check_links.py"
)
check_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_links)


class TestSlug:
    @pytest.mark.parametrize("heading,slug", [
        ("Quickstart", "quickstart"),
        ("The experiment matrix", "the-experiment-matrix"),
        ("Measured vs modeled, exact vs sampled",
         "measured-vs-modeled-exact-vs-sampled"),
        ("Benchmark JSON schema (`extra_info`)",
         "benchmark-json-schema-extra_info"),
    ])
    def test_github_slug(self, heading, slug):
        assert check_links.github_slug(heading) == slug


class TestCheckFile:
    def test_valid_relative_link_and_anchor(self, tmp_path):
        (tmp_path / "target.md").write_text("# Real Heading\n\ntext\n")
        source = tmp_path / "source.md"
        source.write_text(
            "[ok](target.md) [ok2](target.md#real-heading) "
            "[ext](https://example.com/x)\n"
        )
        assert check_links.check_file(source) == []

    def test_broken_file_link_is_reported(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("[broken](missing.md)\n")
        problems = check_links.check_file(source)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_broken_anchor_is_reported(self, tmp_path):
        (tmp_path / "target.md").write_text("# Only Heading\n")
        source = tmp_path / "source.md"
        source.write_text("[bad](target.md#other-heading)\n")
        problems = check_links.check_file(source)
        assert len(problems) == 1 and "broken anchor" in problems[0]

    def test_fenced_code_blocks_are_ignored(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("```\n[not a link](nowhere.md)\n```\n")
        assert check_links.check_file(source) == []

    def test_empty_link_target_is_reported_not_crashed(self, tmp_path):
        source = tmp_path / "source.md"
        source.write_text("[oops]( )\n")
        problems = check_links.check_file(source)
        assert len(problems) == 1 and "empty link target" in problems[0]

    def test_link_title_is_not_part_of_the_path(self, tmp_path):
        (tmp_path / "target.md").write_text("# H\n")
        source = tmp_path / "source.md"
        source.write_text('[ok](target.md "a title") [bad](missing.md "t")\n')
        problems = check_links.check_file(source)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_headings_inside_fences_are_not_anchors(self, tmp_path):
        (tmp_path / "target.md").write_text(
            "# Real\n\n```sh\n# install deps\n```\n"
        )
        source = tmp_path / "source.md"
        source.write_text("[bad](target.md#install-deps)\n")
        problems = check_links.check_file(source)
        assert len(problems) == 1 and "broken anchor" in problems[0]


class TestRepoDocs:
    def test_repo_markdown_set_has_no_broken_links(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert check_links.main([]) == 0

"""Calibration tests: the simulated testbed vs the paper's stated numbers.

Every number asserted here is *stated in the paper's prose* (not read off
a chart), so these are the reproduction's primary quantitative gates.
Tolerances are wider than the headline targets because three-execution
jitter is included.
"""

import pytest

from repro import paperdata
from repro.common.units import GB
from repro.perfmodels import get_calibration, simulate


@pytest.fixture(scope="module")
def sort_runs():
    return {
        fw: simulate(fw, "text_sort", 8 * GB, executions=3)
        for fw in ("hadoop", "spark", "datampi")
    }


@pytest.fixture(scope="module")
def wordcount_runs():
    return {
        fw: simulate(fw, "wordcount", 32 * GB, executions=3)
        for fw in ("hadoop", "spark", "datampi")
    }


class TestTextSort8GB:
    """Section 4.4: 'DataMPI costs 69 seconds while Hadoop and Spark cost
    117 seconds and 114 seconds.'"""

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_elapsed_close_to_paper(self, sort_runs, framework):
        run = sort_runs[framework]
        paper = paperdata.TEXT_SORT_8GB_SEC[framework]
        assert run.elapsed_sec == pytest.approx(paper, rel=0.15)

    def test_ordering(self, sort_runs):
        assert (
            sort_runs["datampi"].elapsed_sec
            < sort_runs["spark"].elapsed_sec
            <= sort_runs["hadoop"].elapsed_sec * 1.05
        )

    def test_o_phase_28s(self, sort_runs):
        assert sort_runs["datampi"].phases["o"] == pytest.approx(
            paperdata.TEXT_SORT_8GB_PHASES["datampi_o_phase"], rel=0.25
        )

    def test_map_phase_36s(self, sort_runs):
        assert sort_runs["hadoop"].phases["map"] == pytest.approx(
            paperdata.TEXT_SORT_8GB_PHASES["hadoop_map_phase"], rel=0.25
        )

    def test_stage0_38s(self, sort_runs):
        assert sort_runs["spark"].phases["stage0"] == pytest.approx(
            paperdata.TEXT_SORT_8GB_PHASES["spark_stage0"], rel=0.25
        )

    def test_improvement_vs_hadoop_in_range(self, sort_runs):
        improvement = paperdata.improvement(
            sort_runs["hadoop"].elapsed_sec, sort_runs["datampi"].elapsed_sec
        )
        low, high = paperdata.IMPROVEMENTS[("text_sort", "hadoop")]
        assert low - 0.04 <= improvement <= high + 0.04

    def test_improvement_vs_spark_about_39pct(self, sort_runs):
        improvement = paperdata.improvement(
            sort_runs["spark"].elapsed_sec, sort_runs["datampi"].elapsed_sec
        )
        assert improvement == pytest.approx(0.39, abs=0.10)


class TestWordCount32GB:
    """Section 4.4: 'DataMPI and Spark cost almost the same execution time,
    130 seconds, and improve the total execution time by 53% compared to
    275 seconds in Hadoop.'"""

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_elapsed_close_to_paper(self, wordcount_runs, framework):
        run = wordcount_runs[framework]
        paper = paperdata.WORDCOUNT_32GB_SEC[framework]
        assert run.elapsed_sec == pytest.approx(paper, rel=0.15)

    def test_datampi_and_spark_similar(self, wordcount_runs):
        ratio = (wordcount_runs["datampi"].elapsed_sec
                 / wordcount_runs["spark"].elapsed_sec)
        assert 0.85 < ratio < 1.18

    def test_improvement_about_53pct(self, wordcount_runs):
        improvement = paperdata.improvement(
            wordcount_runs["hadoop"].elapsed_sec,
            wordcount_runs["datampi"].elapsed_sec,
        )
        assert improvement == pytest.approx(0.53, abs=0.06)


class TestSortResourceProfile:
    """Section 4.4's resource-utilization averages for the Sort case."""

    def metrics(self, sort_runs, framework):
        run = sort_runs[framework]
        cluster = run.first.cluster
        return cluster, run.elapsed_sec

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_cpu_utilization(self, sort_runs, framework):
        cluster, t_end = self.metrics(sort_runs, framework)
        paper = paperdata.SORT_PROFILE["cpu_pct"][framework]
        assert cluster.cpu_utilization_pct(0, t_end) == pytest.approx(paper, rel=0.40)

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_memory_footprint(self, sort_runs, framework):
        cluster, t_end = self.metrics(sort_runs, framework)
        paper = paperdata.SORT_PROFILE["mem_gb"][framework]
        assert cluster.memory_gb(0, t_end) == pytest.approx(paper, rel=0.35)

    def test_spark_uses_most_memory(self, sort_runs):
        values = {
            fw: self.metrics(sort_runs, fw)[0].memory_gb(0, self.metrics(sort_runs, fw)[1])
            for fw in ("hadoop", "spark", "datampi")
        }
        assert values["spark"] > values["hadoop"]
        assert values["spark"] > values["datampi"]

    def test_datampi_network_highest(self, sort_runs):
        """'DataMPI achieves ... 59% higher than Hadoop and 55% higher
        than Spark' — the ratios are the claim."""
        net = {}
        for fw in ("hadoop", "spark", "datampi"):
            cluster, t_end = self.metrics(sort_runs, fw)
            net[fw] = cluster.network_mbps(0, t_end)
        assert net["datampi"] / net["hadoop"] == pytest.approx(1.59, abs=0.35)
        assert net["datampi"] / net["spark"] == pytest.approx(1.55, abs=0.35)

    def test_disk_read_similar_across_frameworks(self, sort_runs):
        """Paper: 50/49/46 MB/s during the O/Map/Stage-0 phases."""
        reads = {}
        phase_names = {"hadoop": "map", "spark": "stage0", "datampi": "o"}
        for fw in ("hadoop", "spark", "datampi"):
            run = sort_runs[fw]
            t0, t1 = run.first.phases[phase_names[fw]]
            reads[fw] = run.first.cluster.disk_read_mbps(t0, t1)
        assert max(reads.values()) / min(reads.values()) < 2.0

    def test_iowait_ordering(self, sort_runs):
        """Paper: 6% (DataMPI) < 12% (Spark) < 15% (Hadoop)."""
        waits = {}
        for fw in ("hadoop", "spark", "datampi"):
            cluster, t_end = self.metrics(sort_runs, fw)
            waits[fw] = get_calibration(fw).iowait_scale * cluster.iowait_pct(0, t_end)
        assert waits["datampi"] < waits["spark"] <= waits["hadoop"] * 1.1
        assert waits["datampi"] == pytest.approx(
            paperdata.SORT_PROFILE["iowait_pct"]["datampi"], rel=0.5
        )


class TestWordCountResourceProfile:
    """Section 4.4's WordCount case: CPU 47/30/80 %, reads 44/44/20 MB/s,
    memory 5/5/9 GB."""

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_cpu(self, wordcount_runs, framework):
        run = wordcount_runs[framework]
        cluster = run.first.cluster
        paper = paperdata.WORDCOUNT_PROFILE["cpu_pct"][framework]
        assert cluster.cpu_utilization_pct(0, run.elapsed_sec) == pytest.approx(
            paper, rel=0.30
        )

    def test_hadoop_cpu_bound(self, wordcount_runs):
        run = wordcount_runs["hadoop"]
        assert run.first.cluster.cpu_utilization_pct(0, run.elapsed_sec) > 70.0

    def test_hadoop_reads_slowest(self, wordcount_runs):
        reads = {
            fw: wordcount_runs[fw].first.cluster.disk_read_mbps(
                0, wordcount_runs[fw].elapsed_sec
            )
            for fw in ("hadoop", "spark", "datampi")
        }
        assert reads["hadoop"] < reads["datampi"] * 0.6
        assert reads["hadoop"] < reads["spark"] * 0.6

    @pytest.mark.parametrize("framework", ["hadoop", "spark", "datampi"])
    def test_memory(self, wordcount_runs, framework):
        run = wordcount_runs[framework]
        paper = paperdata.WORDCOUNT_PROFILE["mem_gb"][framework]
        assert run.first.cluster.memory_gb(0, run.elapsed_sec) == pytest.approx(
            paper, rel=0.30
        )

    def test_hadoop_uses_most_memory(self, wordcount_runs):
        mems = {
            fw: wordcount_runs[fw].first.cluster.memory_gb(
                0, wordcount_runs[fw].elapsed_sec
            )
            for fw in ("hadoop", "spark", "datampi")
        }
        assert mems["hadoop"] > mems["spark"]
        assert mems["hadoop"] > mems["datampi"]

"""Tests for the functional Hadoop MapReduce engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ConfigError, JobError
from repro.hadoop import (
    HadoopConf,
    JobPipeline,
    MapReduceJob,
    records_to_splits,
)


def wc_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


def make_wc_splits():
    lines = [
        "apple banana apple",
        "cherry banana",
        "apple cherry cherry cherry",
    ]
    return [[(i, line)] for i, line in enumerate(lines)]


class TestMapReduceJob:
    def test_wordcount_correct(self):
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=3))
        result = job.run(make_wc_splits())
        counts = {kv.key: kv.value for kv in result.merged_outputs()}
        assert counts == {"apple": 3, "banana": 2, "cherry": 4}

    def test_outputs_sorted_within_partition(self):
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2))
        result = job.run(make_wc_splits())
        for partition in result.outputs:
            keys = [kv.key for kv in partition]
            assert keys == sorted(keys)

    def test_counters_track_volumes(self):
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2))
        result = job.run(make_wc_splits())
        c = result.counters
        assert c["map_input_records"] == 3
        assert c["map_output_records"] == 9
        assert c["reduce_input_records"] == 9
        assert c["reduce_input_groups"] == 3
        assert c["reduce_output_records"] == 3
        assert c["shuffle_bytes"] > 0

    def test_combiner_shrinks_shuffle(self):
        plain = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2))
        combined = MapReduceJob(
            wc_mapper, sum_reducer,
            HadoopConf(num_reduces=2, combiner=lambda k, vs: sum(vs)),
        )
        splits = make_wc_splits()
        plain_result = plain.run(splits)
        combined_result = combined.run(splits)
        assert combined_result.counters["shuffle_bytes"] < plain_result.counters["shuffle_bytes"]
        assert (
            {kv.key: kv.value for kv in combined_result.merged_outputs()}
            == {kv.key: kv.value for kv in plain_result.merged_outputs()}
        )

    def test_multiple_spills_still_correct(self):
        conf = HadoopConf(num_reduces=2, spill_record_limit=5)
        job = MapReduceJob(wc_mapper, sum_reducer, conf)
        lines = ["w%d common" % (i % 7) for i in range(40)]
        result = job.run([[(i, line) for i, line in enumerate(lines)]])
        counts = {kv.key: kv.value for kv in result.merged_outputs()}
        assert counts["common"] == 40
        assert result.counters["merge_passes"] >= 1
        # Spilled records >= map output records means multi-pass disk traffic.
        assert result.counters["spilled_records"] >= 40

    def test_identity_job_sorts_by_key(self):
        job = MapReduceJob(
            lambda k, v: [(k, v)], lambda k, vs: [(k, v) for v in vs],
            HadoopConf(num_reduces=1),
        )
        records = [(9, "i"), (1, "a"), (5, "e")]
        result = job.run([records])
        assert [kv.key for kv in result.merged_outputs()] == [1, 5, 9]

    def test_reducer_returning_none_is_an_error(self):
        job = MapReduceJob(wc_mapper, lambda k, vs: None, HadoopConf(num_reduces=1))
        with pytest.raises(JobError):
            job.run(make_wc_splits())

    def test_empty_input(self):
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2))
        result = job.run([])
        assert result.merged_outputs() == []

    def test_conf_validation(self):
        with pytest.raises(ConfigError):
            HadoopConf(num_reduces=0)
        with pytest.raises(ConfigError):
            HadoopConf(spill_record_limit=0)

    @given(st.lists(st.text(alphabet="abcd ", max_size=20), max_size=15),
           st.integers(min_value=1, max_value=5))
    def test_wordcount_matches_reference(self, lines, num_reduces):
        expected: dict[str, int] = {}
        for line in lines:
            for word in line.split():
                expected[word] = expected.get(word, 0) + 1
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=num_reduces))
        result = job.run([[(i, line)] for i, line in enumerate(lines)])
        assert {kv.key: kv.value for kv in result.merged_outputs()} == expected


class TestJobPipeline:
    def test_records_to_splits_round_robin(self):
        splits = records_to_splits([(i, i) for i in range(7)], 3)
        assert [len(s) for s in splits] == [3, 2, 2]

    def test_records_to_splits_validation(self):
        with pytest.raises(JobError):
            records_to_splits([], 0)

    def test_chained_jobs(self):
        pipeline = JobPipeline(num_splits=2)
        count_job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2, job_name="count"))
        first = pipeline.run_job(count_job, make_wc_splits())
        # Second job: swap (word, count) -> (count, word) and sort by count.
        swap_job = MapReduceJob(
            lambda k, v: [(v, k)], lambda k, vs: [(k, v) for v in sorted(vs)],
            HadoopConf(num_reduces=1, job_name="swap"),
        )
        second = pipeline.run_chained(swap_job, first)
        assert pipeline.num_jobs == 2
        assert [record.name for record in pipeline.history] == ["count", "swap"]
        assert [kv.key for kv in second.merged_outputs()] == [2, 3, 4]

    def test_total_counters_accumulate(self):
        pipeline = JobPipeline(num_splits=2)
        job = MapReduceJob(wc_mapper, sum_reducer, HadoopConf(num_reduces=2))
        pipeline.run_job(job, make_wc_splits())
        pipeline.run_job(job, make_wc_splits())
        assert pipeline.total_counters["map_input_records"] == 6

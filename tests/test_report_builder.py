"""ReportBuilder: figure artifacts rendered from a recorded matrix."""

import json

import pytest

from repro.datampi.checkpoint import read_json
from repro.experiments.matrix import MatrixRunner, load_matrix
from repro.experiments.reportbuilder import FIGURE_PAPER_REFS, ReportBuilder
from repro.experiments.spec import CellSpec, ExperimentSpec


@pytest.fixture(scope="module")
def recorded_matrix(tmp_path_factory):
    out = tmp_path_factory.mktemp("matrix")
    spec = ExperimentSpec(
        "report-fixture",
        (
            CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
            CellSpec("wordcount", "common", "hadoop-model", "tiny"),
            CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
            CellSpec("kmeans", "iteration", "hadoop-model", "tiny"),
        ),
        max_iterations=3,
    )
    MatrixRunner(spec, str(out)).run()
    return load_matrix(str(out))


@pytest.fixture()
def built_reports(recorded_matrix, tmp_path):
    reports = tmp_path / "reports"
    written = ReportBuilder(recorded_matrix, str(reports)).build()
    return reports, written


class TestArtifacts:
    def test_every_figure_emits_json_and_markdown(self, built_reports):
        reports, written = built_reports
        for name in FIGURE_PAPER_REFS:
            assert (reports / f"{name}.json").exists()
            assert (reports / f"{name}.md").exists()
        assert (reports / "index.md").exists()
        assert set(written) == {
            str(reports / f"{name}.{ext}")
            for name in FIGURE_PAPER_REFS for ext in ("json", "md")
        } | {str(reports / "index.md")}

    def test_figure_json_carries_paper_reference_and_spec_hash(
            self, built_reports, recorded_matrix):
        reports, _written = built_reports
        for name, ref in FIGURE_PAPER_REFS.items():
            doc = read_json(str(reports / f"{name}.json"))
            assert doc["figure"] == name
            assert doc["paper"] == ref
            assert doc["spec_hash"] == recorded_matrix.spec.spec_hash

    def test_json_artifacts_are_valid_json(self, built_reports):
        reports, _written = built_reports
        for path in reports.glob("*.json"):
            json.loads(path.read_text())


class TestFigureContent:
    def test_execution_time_has_one_row_per_cell(self, built_reports,
                                                 recorded_matrix):
        reports, _ = built_reports
        doc = read_json(str(reports / "execution_time.json"))
        assert len(doc["rows"]) == len(recorded_matrix.results)
        engines = {row["engine"] for row in doc["rows"]}
        assert engines == {"datampi", "hadoop-model"}
        for row in doc["rows"]:
            # deterministic artifact: modeled seconds and exact bytes
            # only — the measured wall clock lives in timings.json
            assert row["modeled_sec"] > 0
            assert row["bytes_moved"] > 0
            assert "measured_sec" not in row

    def test_speedup_reports_datampi_advantage(self, built_reports):
        reports, _ = built_reports
        doc = read_json(str(reports / "speedup.json"))
        rows = {(r["workload"], r["mode"]): r for r in doc["rows"]}
        # modeled cluster seconds: DataMPI beats the Hadoop model everywhere
        for row in doc["rows"]:
            assert row["modeled_speedup_vs_hadoop_model"] > 1.0
        # measured bytes: the iterative cell's cache shrinks DataMPI's total
        assert rows[("kmeans", "iteration")]["bytes_ratio_vs_hadoop_model"] > 1.0

    def test_bytes_per_iteration_covers_iterative_cells_only(
            self, built_reports):
        reports, _ = built_reports
        doc = read_json(str(reports / "bytes_per_iteration.json"))
        assert {row["engine"] for row in doc["rows"]} == \
            {"datampi", "hadoop-model"}
        for row in doc["rows"]:
            assert row["workload"] == "kmeans"
            assert len(row["per_iteration_bytes"]) == row["iterations"]
            assert row["total_bytes"] == sum(row["per_iteration_bytes"])

    def test_resources_rows_expose_exact_counters(self, built_reports,
                                                  recorded_matrix):
        reports, _ = built_reports
        doc = read_json(str(reports / "resources.json"))
        assert doc["volatile"] is False
        assert len(doc["rows"]) == len(recorded_matrix.results)
        for row in doc["rows"]:
            assert row["bytes_moved"] > 0
            assert row["counters"]
            assert list(row["counters"]) == sorted(row["counters"])

    def test_timings_rows_expose_profiler_fields(self, built_reports,
                                                 recorded_matrix):
        reports, _ = built_reports
        doc = read_json(str(reports / "timings.json"))
        assert doc["volatile"] is True
        assert len(doc["rows"]) == len(recorded_matrix.results)
        for row in doc["rows"]:
            assert row["wall_sec"] > 0
            assert row["num_samples"] >= 1

    def test_index_links_every_figure_and_verification(self, built_reports):
        reports, _ = built_reports
        index = (reports / "index.md").read_text()
        for name in FIGURE_PAPER_REFS:
            assert f"{name}.md" in index
        assert "Cross-engine output verification" in index
        assert "False" not in index  # all engines agreed on this fixture

    def test_rebuild_is_idempotent(self, recorded_matrix, tmp_path):
        reports = tmp_path / "reports"
        first = ReportBuilder(recorded_matrix, str(reports)).build()
        snapshot = {p: (reports / p).read_text()
                    for p in ("execution_time.json", "speedup.json",
                              "bytes_per_iteration.json", "index.md")}
        second = ReportBuilder(recorded_matrix, str(reports)).build()
        assert first == second
        for name, content in snapshot.items():
            assert (reports / name).read_text() == content

"""Warm rank-pool serving path: lifecycle, recycling, and equivalence.

The contract under test: a :class:`~repro.serving.WorldPool` forms one
O/A world, serves a stream of job submissions on it, and recycles the
world between jobs.  Three families of guarantees:

* **Equivalence** — outputs of a pooled submission are byte-identical
  to a cold per-job world running the *same* ``DataMPIJob``, on every
  transport backend (the pool is a latency optimisation, never a
  semantics change).
* **Recycling** — no per-job state survives a job boundary: splits
  pinned under ``o.splits`` by job N are never served as job N+1's
  input, and job N's ``a.output`` pin is not readable from job N+1's
  cache (the world-lifecycle leak this PR fixes).
* **Lifecycle** — registration is pre-start only, task failures fail
  their submission but not the pool, close() is idempotent and fails
  in-flight futures loudly.
"""

import os
import pickle
import threading
import time

import pytest

from repro.bigdatabench import TextGenerator
from repro.common.errors import ConfigError, JobError, MPIError
from repro.mpi.transport import get_transport
from repro.datampi import (
    A_OUTPUT_KEY,
    O_SPLITS_KEY,
    ChunkStore,
    DataMPIConf,
    DataMPIJob,
    KVCache,
    StorageConfig,
    recycle_world,
)
from repro.serving import WorldPool
from repro.workloads import (
    split_round_robin,
    wordcount_datampi_job,
    wordcount_datampi_result,
    wordcount_reference,
)

ALL_BACKENDS = ("thread", "shm", "inline", "tcp")

LINES_A = TextGenerator(seed=7).lines(150)
LINES_B = TextGenerator(seed=21).lines(110)
PARALLELISM = 2


def stable_bytes(value) -> bytes:
    return pickle.dumps(value, protocol=4)


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    return request.param


def _wordcount_pool(transport, parallelism=PARALLELISM) -> WorldPool:
    pool = WorldPool(num_o=parallelism, num_a=parallelism, transport=transport)
    pool.register("wordcount", wordcount_datampi_job(parallelism))
    return pool


class TestPooledColdEquivalence:
    """Same workload, warm WorldPool vs fresh mpi_run world: byte-identical."""

    def test_outputs_match_cold_world(self, backend):
        cold = wordcount_datampi_result(LINES_A, PARALLELISM,
                                        transport=backend)
        with _wordcount_pool(backend) as pool:
            pool.start()
            warm = pool.run_job("wordcount",
                                split_round_robin(LINES_A, PARALLELISM))
        assert stable_bytes(warm.outputs) == stable_bytes(cold.outputs)
        assert dict(warm.merged_outputs()) == wordcount_reference(LINES_A)

    def test_stream_of_jobs_each_matches_cold(self, backend):
        """Ten submissions on one world, every one equal to its cold twin."""
        inputs = [LINES_A, LINES_B] * 5
        with _wordcount_pool(backend) as pool:
            pool.start()
            warm = [
                pool.run_job("wordcount",
                             split_round_robin(lines, PARALLELISM))
                for lines in inputs
            ]
        for lines, result in zip(inputs, warm):
            cold = wordcount_datampi_result(lines, PARALLELISM,
                                            transport=backend)
            assert stable_bytes(result.outputs) == stable_bytes(cold.outputs)


class TestWorldRecycling:
    """The state-leak fix: nothing pinned by job N survives into job N+1."""

    def test_recycle_world_clears_pins_keeps_stat_counters(self):
        cache = KVCache(None)
        store = ChunkStore()
        cache.put(O_SPLITS_KEY, ["split-0", "split-1"])
        cache.put(A_OUTPUT_KEY, [("k", 1)])
        cache.get(O_SPLITS_KEY)  # a hit, so the counter is non-zero
        hits_before = cache.counters["cache.hits"]
        recycle_world(cache, store)
        assert cache.get(O_SPLITS_KEY) is None
        assert cache.get(A_OUTPUT_KEY) is None
        # Counters are cumulative measurements, not per-job state.
        assert cache.counters["cache.hits"] == hits_before

    def test_two_different_inputs_through_one_world(self, backend):
        """The regression the fix exists for: were the ``o.splits`` pins
        leaking, job 2 would be served job 1's cached input and produce
        job 1's counts."""
        with _wordcount_pool(backend) as pool:
            pool.start()
            first = pool.run_job("wordcount",
                                 split_round_robin(LINES_A, PARALLELISM))
            second = pool.run_job("wordcount",
                                  split_round_robin(LINES_B, PARALLELISM))
        assert dict(first.merged_outputs()) == wordcount_reference(LINES_A)
        assert dict(second.merged_outputs()) == wordcount_reference(LINES_B)
        cold = wordcount_datampi_result(LINES_B, PARALLELISM,
                                        transport=backend)
        assert stable_bytes(second.outputs) == stable_bytes(cold.outputs)

    def test_a_output_pin_does_not_cross_job_boundary(self, backend):
        """Job N's A output is pinned under ``a.output`` during the job;
        a recycled world must not expose it to job N+1's A task."""

        def o_task(ctx, split):
            for word in split:
                ctx.send(word, 1)

        def a_task(ctx):
            leaked = ctx.cache.get(A_OUTPUT_KEY) is not None
            return [("leaked", leaked)] + \
                [(key, sum(vals)) for key, vals in ctx.grouped()]

        job = DataMPIJob(o_task, a_task,
                         DataMPIConf(num_o=2, num_a=1, transport=backend))
        pool = WorldPool(num_o=2, num_a=1, transport=backend)
        pool.register("spy", job)
        with pool:
            pool.start()
            first = pool.run_job("spy", [["a", "b"], ["b"]])
            second = pool.run_job("spy", [["c"], ["c", "d"]])
        assert dict(first.merged_outputs())["leaked"] is False
        assert dict(second.merged_outputs())["leaked"] is False
        assert dict(second.merged_outputs())["c"] == 2


def _segment_files(directory) -> list[str]:
    return [name for name in os.listdir(directory) if name.endswith(".seg")]




class TestPoolSpillBoundaries:
    """Spill state must respect job boundaries: a recycled world neither
    leaks segment files nor serves job N's spilled chunks to job N+1."""

    def test_recycle_world_resets_spill_state(self, tmp_path):
        """Unit-level recycle contract for the spill half: segment files
        are deleted, spilled chunks are gone, counters restart at zero."""
        cache = KVCache(None)
        store = ChunkStore(spill_threshold=64, spill_dir=str(tmp_path))
        for index in range(4):
            store.add(bytes(48), origin=(0, index))
        assert store.bytes_spilled > 0
        assert _segment_files(tmp_path)
        recycle_world(cache, store)
        assert _segment_files(tmp_path) == []
        assert store.raw_chunks() == []
        assert store.bytes_spilled == 0
        assert store.spill_reads == 0

    def test_over_budget_jobs_spill_and_stay_correct(self, backend, tmp_path):
        """A pool whose world is budgeted far below the shuffle size must
        spill on every submission and still produce outputs identical to
        an unbudgeted cold world."""
        storage = StorageConfig(spill_threshold=256, spill_dir=str(tmp_path))
        pool = WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                         transport=backend, storage=storage)
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        with pool:
            pool.start()
            first = pool.run_job("wordcount",
                                 split_round_robin(LINES_A, PARALLELISM))
            second = pool.run_job("wordcount",
                                  split_round_robin(LINES_B, PARALLELISM))
        assert first.counters["a.bytes_spilled"] > 0
        assert second.counters["a.bytes_spilled"] > 0
        assert dict(first.merged_outputs()) == wordcount_reference(LINES_A)
        assert dict(second.merged_outputs()) == wordcount_reference(LINES_B)
        cold = wordcount_datampi_result(LINES_B, PARALLELISM,
                                        transport=backend)
        assert stable_bytes(second.outputs) == stable_bytes(cold.outputs)

    def test_recycled_world_does_not_leak_segment_files(self, backend,
                                                        tmp_path, wait_until):
        """Every job boundary deletes that job's segment files; after the
        pool closes the shared spill directory holds none at all."""
        storage = StorageConfig(spill_threshold=256, spill_dir=str(tmp_path))
        pool = WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                         transport=backend, storage=storage)
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        with pool:
            pool.start()
            for lines in (LINES_A, LINES_B, LINES_A):
                result = pool.run_job(
                    "wordcount", split_round_robin(lines, PARALLELISM))
                assert result.counters["a.bytes_spilled"] > 0
                # Segment deletion happens on A ranks as they recycle,
                # which may lag the root's result send by a beat.
                wait_until(lambda: not _segment_files(tmp_path), timeout=30,
                           message="job boundary left segment files behind")
        assert _segment_files(tmp_path) == []

    def test_spilled_counters_are_per_job_not_cumulative(self, backend,
                                                         tmp_path):
        """Each submission reports its own spill traffic: a world that
        leaked chunk-store state across recycles would inflate job N+1's
        counters with job N's bytes."""
        storage = StorageConfig(spill_threshold=256, spill_dir=str(tmp_path))
        pool = WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                         transport=backend, storage=storage)
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        with pool:
            pool.start()
            first = pool.run_job("wordcount",
                                 split_round_robin(LINES_A, PARALLELISM))
            repeat = pool.run_job("wordcount",
                                  split_round_robin(LINES_A, PARALLELISM))
        assert first.counters["a.bytes_spilled"] > 0
        assert repeat.counters["a.bytes_spilled"] == \
            first.counters["a.bytes_spilled"]


class TestPoolLifecycle:
    def test_register_after_start_rejected(self):
        with _wordcount_pool("thread") as pool:
            pool.start()
            with pytest.raises(ConfigError, match="before the pool starts"):
                pool.register("late", wordcount_datampi_job(PARALLELISM))

    def test_submit_before_start_rejected(self):
        pool = _wordcount_pool("thread")
        with pytest.raises(ConfigError, match="not started"):
            pool.submit("wordcount", [[]])
        pool.close()

    def test_unknown_job_name_rejected(self):
        with _wordcount_pool("thread") as pool:
            pool.start()
            with pytest.raises(ConfigError, match="unknown job"):
                pool.submit("nope", [[]])

    def test_mismatched_world_shape_rejected(self):
        pool = WorldPool(num_o=2, num_a=2, transport="thread")
        with pytest.raises(ConfigError, match="world, pool is"):
            pool.register("wc", wordcount_datampi_job(parallelism=3))
        pool.close()

    def test_start_without_jobs_rejected(self):
        pool = WorldPool(num_o=1, num_a=1, transport="thread")
        with pytest.raises(ConfigError, match="register at least one job"):
            pool.start()
        pool.close()

    def test_submit_after_close_rejected(self):
        pool = _wordcount_pool("thread")
        pool.start()
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigError, match="closed"):
            pool.submit("wordcount", [[]])

    def test_task_failure_fails_submission_not_pool(self, backend):
        """A raising task travels the outcome gather, fails its own
        future, and leaves the world serving the next submission."""

        def o_boom(ctx, split):
            raise ValueError("task exploded")

        def a_task(ctx):
            return [kv for kv in ctx.grouped()]

        boom = DataMPIJob(o_boom, a_task,
                          DataMPIConf(num_o=PARALLELISM, num_a=PARALLELISM))
        pool = _wordcount_pool(backend)
        pool.register("boom", boom)
        with pool:
            pool.start()
            with pytest.raises(JobError, match="task exploded"):
                pool.run_job("boom", [["x"], ["y"]])
            after = pool.run_job("wordcount",
                                 split_round_robin(LINES_B, PARALLELISM))
        assert dict(after.merged_outputs()) == wordcount_reference(LINES_B)

    def test_rank_death_mid_job_fails_future_with_cause(self, backend):
        """A pool rank dying while serving a submission (injected at the
        ``pool-submit`` point — no sleeps, no signals) must fail that
        future with a cause naming the dead rank, not hang it."""
        plan = "kill@pool-submit:rank=1:superstep=1"
        transport = get_transport(backend, fault_plan=plan)
        pool = WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                         transport=transport)
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        with pool:
            pool.start()
            future = pool.submit("wordcount",
                                 split_round_robin(LINES_A, PARALLELISM))
            with pytest.raises((JobError, MPIError)) as excinfo:
                future.result(timeout=120)
        assert "rank 1" in str(excinfo.value)

    def test_tcp_pool_recovers_and_serves_next_submission(self):
        """On the elastic tcp transport the dead rank's slot is respawned:
        the in-flight future fails loudly, the pool itself survives, and
        the very next submission is served by the recovered world."""
        transport = get_transport(
            "tcp", respawns=1,
            fault_plan="kill@pool-submit:rank=1:superstep=1")
        pool = WorldPool(num_o=PARALLELISM, num_a=PARALLELISM,
                         transport=transport)
        pool.register("wordcount", wordcount_datampi_job(PARALLELISM))
        with pool:
            pool.start()
            doomed = pool.submit("wordcount",
                                 split_round_robin(LINES_A, PARALLELISM))
            with pytest.raises(JobError, match=r"rank\(s\) 1 died mid-job"):
                doomed.result(timeout=120)
            after = pool.run_job("wordcount",
                                 split_round_robin(LINES_B, PARALLELISM))
        assert dict(after.merged_outputs()) == wordcount_reference(LINES_B)
        cold = wordcount_datampi_result(LINES_B, PARALLELISM, transport="tcp")
        assert stable_bytes(after.outputs) == stable_bytes(cold.outputs)

    def test_concurrent_submitters(self, backend):
        """Interleaved submissions from several threads all resolve to
        their own correct results (futures matched by sequence)."""
        inputs = [LINES_A, LINES_B]
        results: dict[int, dict] = {}
        errors: list[BaseException] = []

        with _wordcount_pool(backend) as pool:
            pool.start()

            def submitter(index: int) -> None:
                try:
                    lines = inputs[index % len(inputs)]
                    result = pool.run_job(
                        "wordcount", split_round_robin(lines, PARALLELISM))
                    results[index] = dict(result.merged_outputs())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [threading.Thread(target=submitter, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
        assert not errors
        assert len(results) == 6
        for index, counts in results.items():
            expected = wordcount_reference(inputs[index % len(inputs)])
            assert counts == expected

"""Tests for the BigDataBench data-generation substrate."""

import pytest

from repro.bigdatabench import (
    TABLE1,
    SeedModel,
    SparseVector,
    TextGenerator,
    all_amazon_models,
    amazon_model,
    average_line_bytes,
    generate_kmeans_vectors,
    lda_wiki1w,
    load_seed_model,
    mean_vector,
    measure_compression_ratio,
    table1_rows,
    to_sequence_file,
    vectorize,
)
from repro.common import WorkloadError
from repro.common.rng import substream


class TestSeedModels:
    def test_wiki_model_vocabulary_size(self):
        assert lda_wiki1w().vocabulary_size == 10_000

    def test_model_is_deterministic(self):
        a = lda_wiki1w().sample_sentence(substream(1, "x"), 20)
        b = lda_wiki1w().sample_sentence(substream(1, "x"), 20)
        assert a == b

    def test_zipf_skew(self):
        """The head of the distribution dominates (small effective dictionary)."""
        model = lda_wiki1w()
        rng = substream(2, "zipf")
        words = [model.sample_word(rng) for _ in range(20_000)]
        head = set(model.top_words(100))
        head_fraction = sum(1 for word in words if word in head) / len(words)
        assert head_fraction > 0.45

    def test_amazon_models_distinct(self):
        model1, model2 = amazon_model(1), amazon_model(2)
        specific1 = {w for w in model1.vocabulary if w.startswith("c1")}
        specific2 = {w for w in model2.vocabulary if w.startswith("c2")}
        assert specific1 and specific2
        assert not specific1 & set(model2.vocabulary)
        assert not specific2 & set(model1.vocabulary)

    def test_amazon_models_share_common_words(self):
        shared1 = {w for w in amazon_model(1).vocabulary if not w.startswith("c")}
        shared2 = {w for w in amazon_model(2).vocabulary if not w.startswith("c")}
        assert shared1 == shared2

    def test_amazon_index_validation(self):
        with pytest.raises(WorkloadError):
            amazon_model(0)
        with pytest.raises(WorkloadError):
            amazon_model(6)

    def test_load_by_name(self):
        assert load_seed_model("lda_wiki1w").name == "lda_wiki1w"
        assert load_seed_model("amazon3").name == "amazon3"
        with pytest.raises(WorkloadError):
            load_seed_model("unknown")

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(WorkloadError):
            SeedModel("empty", [])

    def test_all_amazon_models(self):
        models = all_amazon_models()
        assert [m.name for m in models] == [f"amazon{i}" for i in range(1, 6)]


class TestTextGenerator:
    def test_line_count(self):
        assert len(TextGenerator(seed=1).lines(50)) == 50

    def test_deterministic(self):
        assert TextGenerator(seed=3).lines(10) == TextGenerator(seed=3).lines(10)

    def test_streams_independent(self):
        generator = TextGenerator(seed=3)
        assert generator.lines(10, stream=0) != generator.lines(10, stream=1)

    def test_bytes_target_reached(self):
        lines = TextGenerator(seed=4).lines_of_bytes(5_000)
        total = sum(len(line.encode()) + 1 for line in lines)
        assert total >= 5_000
        assert total < 5_000 + 200  # stops promptly after crossing

    def test_documents_shape(self):
        docs = list(TextGenerator(seed=5).documents(4, lines_per_doc=3))
        assert len(docs) == 4
        assert all(len(doc) == 3 for doc in docs)

    def test_word_range_validation(self):
        with pytest.raises(WorkloadError):
            TextGenerator(words_per_line=(0, 5))
        with pytest.raises(WorkloadError):
            TextGenerator(words_per_line=(5, 2))

    def test_negative_counts_rejected(self):
        generator = TextGenerator()
        with pytest.raises(WorkloadError):
            generator.lines(-1)
        with pytest.raises(WorkloadError):
            generator.lines_of_bytes(-1)

    def test_average_line_bytes_sane(self):
        avg = average_line_bytes()
        assert 20 < avg < 150


class TestToSeqFile:
    def test_roundtrip(self):
        lines = TextGenerator(seed=6).lines(30)
        seqfile = to_sequence_file(lines)
        records = seqfile.records()
        assert [key for key, _ in records] == lines
        assert all(key == value for key, value in records)

    def test_compression_ratio_realistic(self):
        """Zipf text compresses well; gzip of text is typically 2.5-5x."""
        lines = TextGenerator(seed=7).lines(500)
        ratio = measure_compression_ratio(lines)
        assert 2.0 < ratio < 8.0

    def test_record_count(self):
        assert to_sequence_file(["a", "b"]).num_records == 2

    def test_empty_input(self):
        seqfile = to_sequence_file([])
        assert seqfile.num_records == 0
        assert seqfile.records() == []


class TestSparseVectors:
    def test_vectorize_normalized(self):
        vector = vectorize("a b a c".split())
        assert vector.norm() == pytest.approx(1.0)

    def test_distance_symmetry(self):
        a = vectorize("x y z".split())
        b = vectorize("x q".split())
        assert a.squared_distance(b) == pytest.approx(b.squared_distance(a))

    def test_self_distance_zero(self):
        a = vectorize("m n o".split())
        assert a.squared_distance(a) == pytest.approx(0.0)

    def test_mean_vector(self):
        a = SparseVector({0: 2.0})
        b = SparseVector({0: 0.0, 1: 4.0})
        mean = mean_vector([a, b])
        assert mean.weights[0] == pytest.approx(1.0)
        assert mean.weights[1] == pytest.approx(2.0)

    def test_mean_of_nothing_rejected(self):
        with pytest.raises(WorkloadError):
            mean_vector([])

    def test_generated_vectors_cluster_structure(self):
        """Same-category vectors are closer than cross-category ones."""
        vectors, labels = generate_kmeans_vectors(50, seed=8)
        same, cross = [], []
        for i in range(len(vectors)):
            for j in range(i + 1, min(i + 12, len(vectors))):
                dist = vectors[i].squared_distance(vectors[j])
                (same if labels[i] == labels[j] else cross).append(dist)
        assert sum(same) / len(same) < sum(cross) / len(cross)

    def test_labels_balanced(self):
        _, labels = generate_kmeans_vectors(25, seed=9)
        assert all(labels.count(label) == 5 for label in range(5))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_kmeans_vectors(0)


class TestTable1:
    def test_five_workloads(self):
        assert len(TABLE1) == 5
        assert [w.name for w in TABLE1] == [
            "Sort", "WordCount", "Grep", "Naive Bayes", "K-means",
        ]

    def test_types_match_paper(self):
        types = {w.name: w.workload_type for w in TABLE1}
        assert types["Sort"] == "Micro-benchmark"
        assert types["Naive Bayes"] == "Social Network"
        assert types["K-means"] == "E-commerce"

    def test_rows_render(self):
        rows = table1_rows()
        assert rows[0] == ("1", "Sort", "Micro-benchmark")

"""Shared fixtures for the test suite."""

import socket
import time

import pytest

from repro.mpi import faultinject


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Fault plans are per-process state installed by transports; a test
    that dies mid-run must not poison the next test's process."""
    faultinject.clear()
    yield
    faultinject.clear()


@pytest.fixture
def wait_until():
    """Deadline-bounded polling: ``wait_until(lambda: pred())``.

    Polls ``predicate`` until it returns truthy or ``timeout`` seconds
    pass, then fails the test with ``message``.  Returns the predicate's
    final (truthy) value.  This is the RPL004-sanctioned replacement for
    bare ``time.sleep`` polling loops: the wait is bounded, fails loudly,
    and wakes as soon as the condition holds.
    """

    def wait(predicate, timeout: float = 5.0, interval: float = 0.01,
             message: str | None = None):
        deadline = time.monotonic() + timeout
        while True:
            value = predicate()
            if value:
                return value
            if time.monotonic() >= deadline:
                pytest.fail(
                    message
                    or f"condition {predicate!r} not met within {timeout}s"
                )
            # Deadline-bounded by construction; this fixture IS the
            # sanctioned polling helper.
            time.sleep(interval)  # repro: allow[RPL004]

    return wait


@pytest.fixture
def free_port():
    """A callable probing a currently-free localhost TCP port.

    Probing cannot *reserve* the port — another process may grab it
    between the probe closing and the consumer binding — so callers
    that bind the returned port should go through ``bind_retry``.
    """

    def probe() -> int:
        with socket.socket() as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    return probe


@pytest.fixture
def bind_retry(free_port):
    """Run ``attempt(port)`` with freshly probed ports until one binds.

    ``attempt`` receives a probed free port and must raise (any
    exception whose message contains the platform's EADDRINUSE text) if
    the port was stolen in the probe/bind window; any other failure
    propagates immediately.
    """

    def run(attempt, tries: int = 5):
        last: Exception | None = None
        for _ in range(tries):
            port = free_port()
            try:
                return attempt(port)
            except Exception as exc:
                if "address already in use" not in str(exc).lower():
                    raise
                last = exc
        assert last is not None
        raise last

    return run

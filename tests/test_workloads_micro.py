"""Cross-engine correctness for the micro-benchmarks (Sort, WordCount, Grep).

The paper's premise is that all three frameworks compute the *same*
workloads; these tests pin that down — every engine must agree with the
reference implementation and therefore with each other.
"""

import pytest

from repro.bigdatabench import TextGenerator, to_sequence_file
from repro.common import WorkloadError
from repro.workloads import (
    grep_reference,
    run_grep,
    run_normal_sort,
    run_text_sort,
    run_wordcount,
    sort_reference,
    wordcount_reference,
)

ENGINES = ["hadoop", "spark", "datampi"]


@pytest.fixture(scope="module")
def wiki_lines():
    return TextGenerator(seed=11).lines(300)


class TestWordCount:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, engine, wiki_lines):
        assert run_wordcount(engine, wiki_lines) == wordcount_reference(wiki_lines)

    def test_engines_agree(self, wiki_lines):
        results = [run_wordcount(engine, wiki_lines) for engine in ENGINES]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_input(self, engine):
        assert run_wordcount(engine, []) == {}

    def test_bad_engine_rejected(self, wiki_lines):
        with pytest.raises(WorkloadError):
            run_wordcount("flink", wiki_lines)

    @pytest.mark.parametrize("parallelism", [1, 2, 8])
    def test_parallelism_invariant(self, wiki_lines, parallelism):
        assert (
            run_wordcount("datampi", wiki_lines, parallelism)
            == wordcount_reference(wiki_lines)
        )


class TestGrep:
    PATTERN = r"ba[a-z]*"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_reference(self, engine, wiki_lines):
        expected = grep_reference(wiki_lines, self.PATTERN)
        assert expected, "pattern should match generated text"
        assert run_grep(engine, wiki_lines, self.PATTERN) == expected

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_matches(self, engine, wiki_lines):
        assert run_grep(engine, wiki_lines, r"zzzzqqqq[0-9]+") == {}

    def test_literal_pattern(self, wiki_lines):
        word = wiki_lines[0].split()[0]
        counts = run_grep("datampi", wiki_lines, word)
        assert counts[word] >= 1


class TestTextSort:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_total_order(self, engine, wiki_lines):
        assert run_text_sort(engine, wiki_lines) == sort_reference(wiki_lines)

    def test_engines_agree(self, wiki_lines):
        results = [run_text_sort(engine, wiki_lines) for engine in ENGINES]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_with_duplicates(self, engine):
        lines = ["b", "a", "b", "a", "c"] * 10
        assert run_text_sort(engine, lines) == sorted(lines)

    def test_single_line(self):
        assert run_text_sort("hadoop", ["only"]) == ["only"]


class TestNormalSort:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sorts_decompressed_records(self, engine, wiki_lines):
        seqfile = to_sequence_file(wiki_lines[:100])
        assert run_normal_sort(engine, seqfile) == sorted(wiki_lines[:100])

    def test_compression_was_real(self, wiki_lines):
        seqfile = to_sequence_file(wiki_lines)
        assert seqfile.compressed_bytes < seqfile.raw_bytes

"""Transport backends: shared semantics, plus backend-specific guarantees.

Every backend must implement the same MPI subset — selective receive,
non-overtaking delivery, collectives, error propagation.  On top of that,
``shm`` must actually cross process boundaries and ``inline`` must be
deterministic and detect deadlock immediately.
"""

import os

import pytest

from repro.common.errors import MPIError
from repro.mpi import available_transports, get_transport, mpi_run
from repro.mpi.comm import ANY_SOURCE, ANY_TAG
from repro.mpi.transport import (
    InlineTransport,
    ShmRing,
    ShmTransport,
    TcpTransport,
    ThreadTransport,
    Transport,
)

TRANSPORTS = ("thread", "shm", "inline", "tcp")

# Named test tags (RPL003: no literal ints at send/recv call sites).
TAG_WRONG = 5
TAG_RIGHT = 9
TAG_ECHO = 3
TAG_NEVER_SENT = 42


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(TRANSPORTS) <= set(available_transports())

    def test_get_by_name(self):
        assert isinstance(get_transport("thread"), ThreadTransport)
        assert isinstance(get_transport("shm"), ShmTransport)
        assert isinstance(get_transport("inline"), InlineTransport)
        assert isinstance(get_transport("tcp"), TcpTransport)

    def test_instance_passthrough(self):
        instance = ThreadTransport()
        assert get_transport(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(MPIError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_default_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "inline")
        assert isinstance(get_transport(), InlineTransport)

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert isinstance(get_transport(), ThreadTransport)

    def test_backend_options_pass_through(self):
        transport = get_transport("tcp", hosts="127.0.0.1", port=0)
        assert transport.hosts == ["127.0.0.1"]
        assert get_transport("shm", ring_bytes=4096).ring_bytes == 4096

    def test_unknown_option_names_backend_and_kwarg(self):
        """A kwarg the backend does not accept must raise MPIError naming
        both, not vanish silently or surface a bare TypeError."""
        with pytest.raises(MPIError, match=r"'thread'.*'hosts'"):
            get_transport("thread", hosts="a,b")
        with pytest.raises(MPIError, match=r"'inline'.*'port'"):
            get_transport("inline", port=99)
        with pytest.raises(MPIError, match=r"'shm'.*'hosts'.*ring_bytes"):
            get_transport("shm", hosts="a")  # names the accepted options

    def test_options_rejected_on_instance_passthrough(self):
        instance = ThreadTransport()
        with pytest.raises(MPIError, match="already-constructed"):
            get_transport(instance, hosts="a")


class TestSharedSemantics:
    """The contract every backend must honour, run on all of them."""

    def test_send_recv(self, transport):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "hello")
                return None
            return comm.recv(source=0).payload

        assert mpi_run(2, main, transport=transport) == [None, "hello"]

    def test_fifo_per_pair(self, transport):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(1, i)
                return None
            return [comm.recv(source=0).payload for _ in range(50)]

        assert mpi_run(2, main, transport=transport)[1] == list(range(50))

    def test_tag_matching_skips_other_tags(self, transport):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "wrong", tag=TAG_WRONG)
                comm.send(1, "right", tag=TAG_RIGHT)
                return None
            first = comm.recv(source=0, tag=TAG_RIGHT).payload
            second = comm.recv(source=0, tag=TAG_WRONG).payload
            return (first, second)

        assert mpi_run(2, main, transport=transport)[1] == ("right", "wrong")

    def test_any_source(self, transport):
        def main(comm):
            if comm.rank in (0, 1):
                comm.send(2, comm.rank)
                return None
            return {comm.recv(source=ANY_SOURCE).source for _ in range(2)}

        assert mpi_run(3, main, transport=transport)[2] == {0, 1}

    def test_self_send(self, transport):
        def main(comm):
            comm.send(comm.rank, f"echo-{comm.rank}", tag=TAG_ECHO)
            return comm.recv(source=comm.rank, tag=TAG_ECHO).payload

        assert mpi_run(2, main, transport=transport) == ["echo-0", "echo-1"]

    def test_large_bytes_payload(self, transport):
        blob = bytes(range(256)) * 4096  # 1 MiB, exercises the shm ring path

        def main(comm):
            if comm.rank == 0:
                comm.send(1, blob)
                return None
            return comm.recv(source=0).payload

        results = mpi_run(2, main, transport=transport)
        assert results[1] == blob

    def test_collectives(self, transport):
        def main(comm):
            broadcast = comm.bcast("root" if comm.rank == 0 else None, root=0)
            gathered = comm.gather(comm.rank * 10, root=0)
            everyone = comm.allgather(comm.rank)
            total = comm.allreduce(comm.rank + 1)
            exchanged = comm.alltoall(
                [f"{comm.rank}->{dest}" for dest in range(comm.size)]
            )
            return (broadcast, gathered, everyone, total, exchanged)

        results = mpi_run(3, main, transport=transport)
        for rank, (broadcast, gathered, everyone, total, exchanged) in enumerate(results):
            assert broadcast == "root"
            assert gathered == ([0, 10, 20] if rank == 0 else None)
            assert everyone == [0, 1, 2]
            assert total == 6
            assert exchanged == [f"{src}->{rank}" for src in range(3)]

    def test_barrier(self, transport):
        def main(comm):
            if comm.rank == 0:
                for dest in range(1, comm.size):
                    comm.send(dest, "pre-barrier")
            comm.barrier()
            if comm.rank != 0:
                # The message must already be deliverable after the barrier.
                return comm.recv(source=0, timeout=5.0).payload
            return None

        assert mpi_run(3, main, transport=transport)[1:] == ["pre-barrier"] * 2

    def test_exception_propagates(self, transport):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(MPIError, match="rank 1"):
            mpi_run(2, main, transport=transport)

    def test_failed_rank_unblocks_barrier_peers(self, transport):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("dead rank")
            comm.barrier()

        with pytest.raises(MPIError):
            mpi_run(2, main, transport=transport)

    def test_send_to_invalid_rank(self, transport):
        def main(comm):
            comm.send(99, "x")

        with pytest.raises(MPIError):
            mpi_run(1, main, transport=transport)

    def test_world_size_validation(self, transport):
        with pytest.raises(MPIError):
            mpi_run(0, lambda comm: None, transport=transport)

    def test_results_by_rank(self, transport):
        assert mpi_run(5, lambda comm: comm.rank ** 2, transport=transport) == \
            [0, 1, 4, 9, 16]

    def test_extra_args(self, transport):
        assert mpi_run(
            2, lambda comm, base: base + comm.rank, args=(100,), transport=transport
        ) == [100, 101]


class TestShmSpecifics:
    def test_ranks_are_distinct_processes(self):
        def main(comm):
            return comm.allgather(os.getpid())

        pids = mpi_run(4, main, transport="shm")[0]
        assert len(set(pids)) == 4
        assert os.getpid() not in pids

    def test_ring_wraparound(self):
        """Stream far more bytes than the ring holds to force wrap + reuse."""
        chunk = b"\xab" * 4000
        rounds = 50

        def main(comm):
            if comm.rank == 0:
                for index in range(rounds):
                    comm.send(1, chunk + index.to_bytes(2, "big"))
                return None
            received = [comm.recv(source=0).payload for _ in range(rounds)]
            return all(
                payload[:-2] == chunk and int.from_bytes(payload[-2:], "big") == index
                for index, payload in enumerate(received)
            )

        transport = ShmTransport(ring_bytes=16 * 1024)
        assert mpi_run(2, main, transport=transport)[1] is True

    def test_payload_larger_than_ring_uses_inline_path(self):
        blob = b"z" * (64 * 1024)

        def main(comm):
            if comm.rank == 0:
                comm.send(1, blob)
                return None
            return comm.recv(source=0).payload == blob

        transport = ShmTransport(ring_bytes=8 * 1024)
        assert mpi_run(2, main, transport=transport)[1] is True

    def test_recv_timeout_raises(self):
        def main(comm):
            comm.recv(source=0, timeout=0.2)

        with pytest.raises(MPIError, match="timed out|rank 0"):
            mpi_run(1, main, transport="shm")

    def test_ring_rejects_oversized_single_write(self):
        ring = ShmRing(__import__("multiprocessing").get_context("fork"), 128)
        try:
            with pytest.raises(MPIError, match="exceeds ring capacity"):
                ring.write(b"x" * 200, timeout=0.1)
        finally:
            ring.close()
            ring.unlink()


class TestShmSegmentLeaks:
    """Every SharedMemory segment must be unlinked on *every* exit path.

    A leaked segment outlives the process (kernel object until reboot)
    and triggers resource_tracker warnings; the run() cleanup therefore
    may not depend on the fabric having been fully built, nor on any
    rank having exited cleanly.
    """

    @staticmethod
    def _recording_ring(monkeypatch, fail_at: int | None = None):
        """Record every segment name ShmTransport creates; optionally
        blow up on the ``fail_at``-th construction (mid-fabric abort)."""
        from repro.mpi.transport import shm as shm_module

        real = shm_module.ShmRing
        created: list[str] = []
        calls = {"n": 0}

        class Recording(real):
            def __init__(self, ctx, capacity):
                calls["n"] += 1
                if fail_at is not None and calls["n"] == fail_at:
                    raise MPIError("injected fabric construction failure")
                super().__init__(ctx, capacity)
                created.append(self._shm.name)

        monkeypatch.setattr(shm_module, "ShmRing", Recording)
        return created

    @staticmethod
    def _assert_all_unlinked(names):
        from multiprocessing import shared_memory

        assert names, "the run never built any ring"
        for name in names:
            with pytest.raises(FileNotFoundError):
                segment = shared_memory.SharedMemory(name=name)
                segment.close()  # attach succeeded: it leaked

    def test_normal_exit_unlinks_every_segment(self, monkeypatch):
        created = self._recording_ring(monkeypatch)
        assert mpi_run(3, lambda comm: comm.rank, transport="shm") == [0, 1, 2]
        self._assert_all_unlinked(created)

    def test_rank_failure_unlinks_every_segment(self, monkeypatch):
        created = self._recording_ring(monkeypatch)

        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("mid-run abort")
            comm.barrier()

        with pytest.raises(MPIError):
            mpi_run(3, main, transport="shm")
        self._assert_all_unlinked(created)

    def test_abort_mid_fabric_construction_unlinks_partial_fabric(
        self, monkeypatch
    ):
        """An exception while the rings are still being built (shm space
        or descriptors exhausted) must unlink the ones already created —
        including the partially-built row the failure interrupted."""
        created = self._recording_ring(monkeypatch, fail_at=4)
        with pytest.raises(MPIError, match="injected fabric construction"):
            mpi_run(3, lambda comm: None, transport="shm")
        self._assert_all_unlinked(created)


class TestInlineSpecifics:
    def test_deterministic_arrival_order(self):
        """Many senders, ANY_SOURCE receiver: arrival order never varies."""

        def main(comm):
            if comm.rank == 0:
                return [comm.recv(source=ANY_SOURCE).source for _ in range(9)]
            for _ in range(3):
                comm.send(0, None)
            return None

        orders = {tuple(mpi_run(4, main, transport="inline")[0]) for _ in range(5)}
        assert len(orders) == 1

    def test_deadlock_detected_immediately(self):
        """A recv that can never match fails fast, not after RECV_TIMEOUT."""
        import time

        def main(comm):
            comm.recv(source=0, tag=TAG_NEVER_SENT, timeout=3600.0)

        start = time.monotonic()
        with pytest.raises(MPIError, match="deadlock"):
            mpi_run(1, main, transport="inline")
        assert time.monotonic() - start < 5.0

    def test_cross_deadlock_detected(self):
        def main(comm):
            # Both ranks receive first: classic deadlock.
            comm.recv(source=1 - comm.rank, timeout=3600.0)

        with pytest.raises(MPIError, match="deadlock"):
            mpi_run(2, main, transport="inline")

    def test_original_error_preferred_over_poison(self):
        def main(comm):
            if comm.rank == 1:
                raise KeyError("the real cause")
            comm.recv(source=1)

        with pytest.raises(MPIError, match="the real cause"):
            mpi_run(2, main, transport="inline")


class TestCustomTransportRegistration:
    def test_register_and_resolve(self):
        from repro.mpi.transport import register_transport

        @register_transport
        class _NullTransport(Transport):
            name = "null-test"

            def run(self, world_size, main, args=(), timeout=300.0):
                return ["null"] * world_size

        try:
            assert "null-test" in available_transports()
            assert mpi_run(3, lambda comm: None, transport="null-test") == ["null"] * 3
        finally:
            from repro.mpi.transport import base as _base

            _base._REGISTRY.pop("null-test", None)

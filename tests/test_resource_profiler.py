"""ResourceProfiler: sampling mechanics and counter determinism.

The profiler's contract splits measured quantities in two: sampled
CPU/RSS series (best-effort, vary run to run) and engine byte counters
(exact).  The determinism tests pin the exact half on the inline
transport — two runs of the same cell must agree bit for bit — which is
what lets the reports compare bytes across engines without tolerances.
"""

import time

import pytest

from repro.experiments.matrix import execute_cell
from repro.experiments.profiler import ResourceProfiler, ResourceUsage
from repro.experiments.spec import CellSpec, ExperimentSpec


class TestProfilerMechanics:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ResourceProfiler(interval_sec=0.0)

    def test_usage_before_any_section_raises(self):
        with pytest.raises(RuntimeError):
            ResourceProfiler().usage()

    def test_profile_returns_result_and_usage(self):
        result, usage = ResourceProfiler(interval_sec=0.005).profile(
            lambda: sum(range(100_000))
        )
        assert result == sum(range(100_000))
        assert isinstance(usage, ResourceUsage)
        assert usage.wall_sec > 0
        assert usage.samples, "a final sample is always taken"
        assert usage.max_rss_kb >= 0

    def test_samples_are_monotonic(self):
        profiler = ResourceProfiler(interval_sec=0.002)
        with profiler:
            # The sleep IS the profiled workload (wall time to sample).
            time.sleep(0.02)  # repro: allow[RPL004]
        samples = profiler.usage().samples
        assert len(samples) >= 2
        times = [t for t, _cpu, _rss in samples]
        cpus = [cpu for _t, cpu, _rss in samples]
        assert times == sorted(times)
        assert cpus == sorted(cpus)

    def test_profiler_is_reusable(self):
        profiler = ResourceProfiler(interval_sec=0.005)
        with profiler:
            pass
        first = profiler.usage()
        with profiler:
            # The sleep IS the profiled workload (wall time to sample).
            time.sleep(0.01)  # repro: allow[RPL004]
        second = profiler.usage()
        assert second is not first
        assert second.wall_sec >= 0.01

    def test_exception_still_records_usage(self):
        profiler = ResourceProfiler(interval_sec=0.005)
        with pytest.raises(ValueError):
            with profiler:
                raise ValueError("task failed")
        assert profiler.usage().wall_sec >= 0

    def test_to_dict_is_json_shaped(self):
        _result, usage = ResourceProfiler(interval_sec=0.005).profile(lambda: None)
        doc = usage.to_dict()
        assert set(doc) == {
            "wall_sec", "cpu_sec", "cpu_util_pct", "max_rss_kb",
            "num_samples", "sample_interval_sec", "samples",
        }
        assert doc["num_samples"] == len(doc["samples"])


class TestCounterDeterminism:
    """The exact half of the contract, on the deterministic transport."""

    SPEC = ExperimentSpec(
        "determinism",
        (
            CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
            CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
        ),
        max_iterations=3,
    )

    @pytest.mark.parametrize("index", [0, 1])
    def test_inline_cell_counters_are_identical_across_runs(self, index):
        cell = self.SPEC.cells[index]
        first = execute_cell(cell, self.SPEC)
        second = execute_cell(cell, self.SPEC)
        assert first.counters == second.counters
        assert first.bytes_moved == second.bytes_moved
        assert first.per_iteration_bytes == second.per_iteration_bytes
        assert first.output_checksum == second.output_checksum

    def test_profiled_run_does_not_perturb_counters(self):
        cell = self.SPEC.cells[0]
        bare = execute_cell(cell, self.SPEC)
        profiled, usage = ResourceProfiler(interval_sec=0.001).profile(
            execute_cell, cell, self.SPEC
        )
        assert profiled.counters == bare.counters
        assert profiled.output_checksum == bare.output_checksum
        assert usage.wall_sec > 0


class TestUsageRoundTrip:
    """The worker -> parent serialization path of parallel matrix runs."""

    def test_to_dict_from_dict_round_trips(self):
        profiler = ResourceProfiler(interval_sec=0.001)
        with profiler:
            sum(range(50_000))
        usage = profiler.usage()
        restored = ResourceUsage.from_dict(usage.to_dict())
        assert restored.wall_sec == usage.wall_sec
        assert restored.cpu_sec == usage.cpu_sec
        assert restored.max_rss_kb == usage.max_rss_kb
        assert restored.sample_interval_sec == usage.sample_interval_sec
        assert len(restored.samples) == len(usage.samples)
        assert restored.cpu_util_pct == pytest.approx(usage.cpu_util_pct)
        # the dict form is JSON-serializable (it crosses the pool pipe)
        import json

        assert json.loads(json.dumps(usage.to_dict())) == usage.to_dict()

"""TCP-transport specifics: framing, address specs, multi-process worlds,
and externally joined ranks (the separate-machines code path).

The shared-semantics and equivalence guarantees are covered by
``test_mpi_transports.py`` / ``test_transport_equivalence.py`` (tcp is in
their transport lists); this file pins what only this backend has: the
hosts/port options, the rendezvous, and the wire protocol.
"""

import os
import pickle
import socket
import subprocess
import sys
import threading

import pytest

from repro.common.errors import MPIError
from repro.mpi import mpi_run
from repro.mpi.transport import (
    MAX_FRAME_BYTES,
    TcpTransport,
    TcpWorldServer,
    join_world,
    parse_address,
    parse_authkey,
    parse_hosts,
)
from repro.mpi.transport.codec import FMT_PICKLE
from repro.mpi.transport.tcp import FRAME_HEADER, KIND_REGISTER, recv_frame, \
    send_frame

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Named test tags (RPL003: no literal ints at send/recv call sites).
TAG_BULK = 5
TAG_LATE = 9


@pytest.fixture(autouse=True)
def _no_ambient_authkeys(monkeypatch):
    """An operator's exported authkeys must not leak into the key
    generation / token-embedding assertions."""
    monkeypatch.delenv("REPRO_TCP_AUTHKEY", raising=False)
    monkeypatch.delenv("REPRO_MATRIX_AUTHKEY", raising=False)


class TestSpecs:
    def test_parse_hosts_default_is_localhost(self):
        assert parse_hosts(None) == ["127.0.0.1"]

    def test_parse_hosts_comma_separated(self):
        assert parse_hosts("node-a, node-b,node-c") == \
            ["node-a", "node-b", "node-c"]

    def test_parse_hosts_sequence(self):
        assert parse_hosts(["x", "y"]) == ["x", "y"]

    def test_parse_hosts_empty_rejected(self):
        with pytest.raises(MPIError, match="empty hosts"):
            parse_hosts(" , ,")

    def test_ranks_assigned_round_robin(self):
        transport = TcpTransport(hosts="a,b")
        assert [transport.host_for_rank(r) for r in range(4)] == \
            ["a", "b", "a", "b"]

    def test_parse_address(self):
        assert parse_address("10.0.0.1:9997") == ("10.0.0.1", 9997)
        assert parse_address(("h", 80)) == ("h", 80)

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(MPIError, match="HOST:PORT"):
            parse_address("no-port-here")
        with pytest.raises(MPIError, match="bad port"):
            parse_address("host:nan")
        with pytest.raises(MPIError, match="out of range"):
            parse_address("host:70000")

    def test_bad_port_rejected_at_construction(self):
        with pytest.raises(MPIError, match="port out of range"):
            TcpTransport(port=-1)

    def test_unreachable_bind_host_fails_loudly(self):
        """A hosts entry that is not an address of this machine must
        surface as an MPIError, not a hang."""
        with pytest.raises(MPIError, match="cannot bind|rendezvous"):
            TcpTransport(hosts="203.0.113.7").run(
                2, lambda comm: None, timeout=5.0
            )


class TestFraming:
    def test_frame_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, 1, tag=42, obj={"payload": b"x" * 100_000})
            kind, tag, obj = recv_frame(right)
            assert (kind, tag) == (1, 42)
            assert obj == {"payload": b"x" * 100_000}
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, 1, tag=0, obj=b"y" * 4096)
            # Steal only half the frame, then cut the connection.
            right.recv(10)
            left.close()
            # A desynced stream surfaces either as a torn read or as a
            # garbage length field tripping the frame cap.
            with pytest.raises(MPIError, match="mid-frame|exceeds the"):
                while recv_frame(right) is not None:
                    pass
        finally:
            right.close()


class _EvilPayload:
    """Pickle whose deserialisation has a visible side effect — if the
    flag directory ever appears, unauthenticated bytes were unpickled."""

    def __init__(self, path: str):
        self.path = path

    def __reduce__(self):
        return (os.mkdir, (self.path,))


class TestAuthentication:
    """Frames carry pickle, so no connection may reach the frame layer
    without clearing the HMAC handshake, and hostile length fields must
    not demand unbounded buffers."""

    def test_address_token_carries_the_authkey(self):
        assert parse_address("10.0.0.1:9997/s3cret") == ("10.0.0.1", 9997)
        assert parse_authkey("10.0.0.1:9997/s3cret") == "s3cret"
        assert parse_authkey("10.0.0.1:9997") is None

    def test_generated_key_is_embedded_in_the_server_address(self):
        server = TcpWorldServer(world_size=1)
        try:
            assert parse_authkey(server.address) is not None
        finally:
            server._rendezvous.close()

    def test_supplied_key_is_not_echoed_into_the_address(self, monkeypatch):
        monkeypatch.setenv("REPRO_TCP_AUTHKEY", "shared-env-secret")
        server = TcpWorldServer(world_size=1)
        try:
            assert parse_authkey(server.address) is None
        finally:
            server._rendezvous.close()

    def test_join_requires_an_authkey(self):
        with pytest.raises(MPIError, match="requires its authkey"):
            join_world("127.0.0.1:9997", lambda comm: None)

    def test_env_var_supplies_the_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_TCP_AUTHKEY", "shared-env-secret")
        server = TcpWorldServer(world_size=1)
        joiner = threading.Thread(
            target=join_world,
            args=(server.address, lambda comm: comm.allreduce(7)),
            kwargs={"timeout": 30.0},
        )
        joiner.start()
        assert server.run(timeout=30.0) == [7]
        joiner.join(10.0)

    def test_wrong_authkey_is_rejected(self):
        """A wrong-key joiner gets a loud mismatch error, and the world
        still forms once a correctly keyed rank arrives.  The bad join
        runs to completion *before* the good one starts, so the
        rendezvous is guaranteed to still be accepting when it
        challenges the wrong key."""
        server = TcpWorldServer(world_size=1)
        results: list[list] = []
        runner = threading.Thread(
            target=lambda: results.append(server.run(timeout=30.0))
        )
        runner.start()
        with pytest.raises(MPIError, match="mismatch"):
            join_world(parse_address(server.address), lambda comm: None,
                       authkey="not-the-key", timeout=10.0)
        assert join_world(server.address, lambda comm: comm.rank,
                          timeout=30.0) == 0
        runner.join(15.0)
        assert results == [[0]]

    def test_crafted_pickle_frame_is_never_unpickled(self, tmp_path):
        """A well-formed REGISTER frame with a code-executing payload,
        sent without answering the challenge, must be dropped before any
        byte of it is unpickled — and must not stop the world forming."""
        flag = str(tmp_path / "pwned")
        payload = pickle.dumps(_EvilPayload(flag))
        server = TcpWorldServer(world_size=1)
        attacker = socket.create_connection(parse_address(server.address))
        attacker.sendall(
            FRAME_HEADER.pack(KIND_REGISTER, FMT_PICKLE, 0, 0, len(payload))
            + payload
        )
        joiner = threading.Thread(
            target=join_world,
            args=(server.address, lambda comm: comm.rank),
            kwargs={"timeout": 30.0},
        )
        joiner.start()
        try:
            assert server.run(timeout=15.0) == [0]
        finally:
            attacker.close()
            joiner.join(10.0)
        assert not os.path.exists(flag)

    def test_oversized_frame_length_is_capped(self):
        left, right = socket.socketpair()
        try:
            left.sendall(
                FRAME_HEADER.pack(1, FMT_PICKLE, 0, 0, MAX_FRAME_BYTES + 1)
            )
            with pytest.raises(MPIError, match="exceeds the"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestProcessWorld:
    def test_ranks_are_distinct_processes(self):
        def main(comm):
            return comm.allgather(os.getpid())

        pids = mpi_run(4, main, transport="tcp")[0]
        assert len(set(pids)) == 4
        assert os.getpid() not in pids

    def test_rank_pair_sockets_carry_bulk_payloads(self):
        blob = bytes(range(256)) * 2048  # 512 KiB

        def main(comm):
            if comm.rank == 0:
                for dest in range(1, comm.size):
                    comm.send(dest, blob, tag=TAG_BULK)
                return None
            return comm.recv(source=0, tag=TAG_BULK).payload == blob

        assert mpi_run(3, main, transport="tcp")[1:] == [True, True]

    def test_finished_rank_keeps_fabric_alive_for_peers(self):
        """A rank returning early must not tear down its sockets while
        peers still exchange messages (teardown waits for the launcher's
        shutdown broadcast)."""

        def main(comm):
            if comm.rank == 0:
                return "early"  # finishes immediately
            if comm.rank == 1:
                comm.send(2, "late-message", tag=TAG_LATE)
                return None
            return comm.recv(source=1, tag=TAG_LATE, timeout=30.0).payload

        assert mpi_run(3, main, transport="tcp") == \
            ["early", None, "late-message"]

    def test_explicit_rendezvous_port(self, bind_retry):
        # Probing cannot reserve the port, so the probe/bind window is
        # retried with a fresh port if another process steals it.
        def attempt(port: int):
            transport = TcpTransport(port=port)
            return mpi_run(2, lambda comm: comm.rank, transport=transport)

        assert bind_retry(attempt) == [0, 1]


_JOIN_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.mpi.transport import join_world

def main(comm, base):
    return comm.allreduce(base + comm.rank)

print("result", join_world({address!r}, main, args=(10,)))
"""


class TestExternalJoin:
    """Ranks in *separately launched* processes — no fork inheritance, so
    this exercises exactly the wire protocol separate machines would."""

    def _spawn_joiner(self, address: str) -> subprocess.Popen:
        script = _JOIN_SCRIPT.format(
            src=os.path.join(REPO_ROOT, "src"), address=address
        )
        return subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )

    def test_world_of_external_processes(self):
        world_size = 3
        server = TcpWorldServer(world_size=world_size)
        joiners = [self._spawn_joiner(server.address)
                   for _ in range(world_size)]
        results = server.run(timeout=60.0)
        expected = sum(10 + rank for rank in range(world_size))
        assert results == [expected] * world_size
        for process in joiners:
            output, _ = process.communicate(timeout=30)
            assert process.returncode == 0, output
            assert f"result {expected}" in output

    def test_mixed_local_thread_and_external_rank(self):
        """join_world from a plain thread of this process (what a worker
        embedded in another program would do)."""
        server = TcpWorldServer(world_size=2)
        joined: dict[int, int] = {}

        def joiner(slot: int) -> None:
            joined[slot] = join_world(
                server.address, lambda comm: comm.allreduce(1), timeout=30.0
            )

        threads = [threading.Thread(target=joiner, args=(slot,))
                   for slot in range(2)]
        for thread in threads:
            thread.start()
        assert server.run(timeout=30.0) == [2, 2]
        for thread in threads:
            thread.join(10.0)
        assert joined == {0: 2, 1: 2}

    def test_joined_rank_failure_propagates_to_server(self):
        server = TcpWorldServer(world_size=2)

        def joiner(fail: bool) -> None:
            def main(comm):
                if fail:
                    raise ValueError("joined rank exploded")
                comm.recv(source=1 - comm.rank, timeout=30.0)

            try:
                join_world(server.address, main, rank=0 if fail else 1,
                           timeout=30.0)
            except Exception:
                pass  # asserted via the server below

        threads = [threading.Thread(target=joiner, args=(fail,))
                   for fail in (True, False)]
        for thread in threads:
            thread.start()
        with pytest.raises(MPIError, match="joined rank exploded"):
            server.run(timeout=30.0)
        for thread in threads:
            thread.join(10.0)

    def test_rendezvous_times_out_when_ranks_never_join(self):
        server = TcpWorldServer(world_size=2)
        with pytest.raises(MPIError, match="rendezvous incomplete"):
            server.run(timeout=1.0)

    def test_silent_stray_connection_does_not_wedge_rendezvous(self):
        """A connection that never sends a registration (port scan,
        health check) must not block the world from forming, nor pin
        the rendezvous past its deadline."""
        server = TcpWorldServer(world_size=1)
        host, port = parse_address(server.address)
        stray = socket.create_connection((host, port))
        try:
            joiner = threading.Thread(
                target=join_world,
                args=(server.address, lambda comm: comm.rank),
                kwargs={"timeout": 30.0},
            )
            joiner.start()
            assert server.run(timeout=10.0) == [0]
            joiner.join(10.0)
        finally:
            stray.close()

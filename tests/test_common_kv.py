"""Unit and property tests for the key-value record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.kv import (
    KeyValue,
    decode_record,
    decode_stream,
    encode_record,
    encode_stream,
    record_size,
)

fields = st.one_of(
    st.text(max_size=40),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=40),
    st.booleans(),
    st.none(),
)


class TestRecordCodec:
    def test_string_roundtrip(self):
        record, offset = decode_record(encode_record("word", 1))
        assert record == KeyValue("word", 1)

    def test_bytes_roundtrip(self):
        record, _ = decode_record(encode_record(b"\x00\xff", b"payload"))
        assert record.key == b"\x00\xff"
        assert record.value == b"payload"

    def test_none_value(self):
        record, _ = decode_record(encode_record("k", None))
        assert record.value is None

    def test_bool_distinct_from_int(self):
        record, _ = decode_record(encode_record(True, False))
        assert record.key is True
        assert record.value is False

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_record(object(), 1)

    @given(fields, fields)
    def test_roundtrip_property(self, key, value):
        record, consumed = decode_record(encode_record(key, value))
        assert record == KeyValue(key, value)
        assert consumed == len(encode_record(key, value))


class TestStreamCodec:
    def test_empty_stream(self):
        assert list(decode_stream(b"")) == []

    def test_multi_record_stream(self):
        records = [("a", 1), ("b", 2), ("c", 3)]
        decoded = list(decode_stream(encode_stream(records)))
        assert decoded == [KeyValue(k, v) for k, v in records]

    @given(st.lists(st.tuples(fields, fields), max_size=20))
    def test_stream_roundtrip_property(self, records):
        decoded = list(decode_stream(encode_stream(records)))
        assert decoded == [KeyValue(k, v) for k, v in records]


class TestRecordSize:
    def test_accounts_for_string_bytes(self):
        assert record_size("abc", "") == 8 + 3

    def test_accounts_for_unicode(self):
        assert record_size("é", "") == 8 + 2

    def test_numbers_are_fixed_width(self):
        assert record_size(1, 2.5) == 8 + 8 + 8

    def test_nested_containers(self):
        size = record_size("k", [1.0, 2.0])
        assert size == 8 + 1 + (8 + 8 + 4)

    def test_keyvalue_method_matches_function(self):
        kv = KeyValue("key", "value")
        assert kv.serialized_size() == record_size("key", "value")

    @given(fields, fields)
    def test_size_positive(self, key, value):
        assert record_size(key, value) >= 8

"""Cross-engine correctness for the application benchmarks (K-means, NB)."""

import math

import pytest

from repro.bigdatabench import generate_kmeans_vectors
from repro.common import WorkloadError
from repro.workloads import (
    generate_labeled_documents,
    initial_centroids,
    kmeans_reference,
    run_kmeans,
    run_naive_bayes,
    train_reference,
)


@pytest.fixture(scope="module")
def vectors_and_labels():
    return generate_kmeans_vectors(60, seed=21)


class TestKMeansReference:
    def test_converges(self, vectors_and_labels):
        vectors, _ = vectors_and_labels
        result = kmeans_reference(vectors, k=5, max_iterations=20, seed=3)
        assert result.converged
        assert len(result.centroids) == 5

    def test_clusters_align_with_categories(self, vectors_and_labels):
        """With separable seed models, clustering should mostly match labels."""
        vectors, labels = vectors_and_labels
        result = kmeans_reference(vectors, k=5, max_iterations=20, seed=3)
        assignments = [result.assign(v) for v in vectors]
        # Majority label purity per cluster should be high.
        purity_total = 0
        for cluster in range(5):
            members = [labels[i] for i, a in enumerate(assignments) if a == cluster]
            if members:
                purity_total += max(members.count(lbl) for lbl in set(members))
        assert purity_total / len(vectors) > 0.7

    def test_initial_centroids_validation(self, vectors_and_labels):
        vectors, _ = vectors_and_labels
        with pytest.raises(WorkloadError):
            initial_centroids(vectors, 0)
        with pytest.raises(WorkloadError):
            initial_centroids(vectors[:3], 5)


class TestKMeansEngines:
    @pytest.mark.parametrize("engine", ["hadoop", "spark", "datampi"])
    def test_matches_reference(self, engine, vectors_and_labels):
        vectors, _ = vectors_and_labels
        reference = kmeans_reference(vectors, k=4, max_iterations=6, seed=5)
        result = run_kmeans(engine, vectors, k=4, max_iterations=6, seed=5)
        assert result.iterations == reference.iterations
        assert result.converged == reference.converged
        for mine, ref in zip(result.centroids, reference.centroids):
            assert math.sqrt(mine.squared_distance(ref)) < 1e-9

    def test_engines_agree(self, vectors_and_labels):
        vectors, _ = vectors_and_labels
        results = [
            run_kmeans(engine, vectors, k=3, max_iterations=4, seed=7)
            for engine in ("hadoop", "spark", "datampi")
        ]
        for a, b in zip(results, results[1:]):
            for ca, cb in zip(a.centroids, b.centroids):
                assert math.sqrt(ca.squared_distance(cb)) < 1e-9

    def test_validation(self, vectors_and_labels):
        vectors, _ = vectors_and_labels
        with pytest.raises(WorkloadError):
            run_kmeans("hadoop", vectors, k=3, max_iterations=0)
        with pytest.raises(WorkloadError):
            run_kmeans("nope", vectors, k=3)


class TestNaiveBayes:
    @pytest.fixture(scope="class")
    def documents(self):
        return generate_labeled_documents(100, words_per_doc=25, seed=31)

    def test_reference_model_accurate(self, documents):
        train, test = documents[:80], documents[80:]
        model = train_reference(train)
        assert model.accuracy(test) > 0.9

    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_engine_matches_reference(self, engine, documents):
        reference = train_reference(documents)
        model = run_naive_bayes(engine, documents)
        assert model.class_doc_counts == reference.class_doc_counts
        assert model.vocabulary == reference.vocabulary
        assert model.class_term_counts == reference.class_term_counts

    def test_engines_agree_on_classification(self, documents):
        train, test = documents[:80], documents[80:]
        hadoop_model = run_naive_bayes("hadoop", train)
        datampi_model = run_naive_bayes("datampi", train)
        for doc in test:
            assert hadoop_model.classify(doc.tokens) == datampi_model.classify(doc.tokens)

    def test_spark_not_supported(self, documents):
        """Matches the paper: BigDataBench lacks Spark Naive Bayes."""
        with pytest.raises(WorkloadError):
            run_naive_bayes("spark", documents)

    def test_priors_balanced(self, documents):
        model = train_reference(documents)
        counts = set(model.class_doc_counts.values())
        assert counts == {20}  # 100 docs over 5 balanced classes

    def test_document_generation_validation(self):
        with pytest.raises(WorkloadError):
            generate_labeled_documents(0)

"""Failure semantics pinned across *all four* backends.

Every transport must present the same :class:`MPIError` surface for the
two failure families that matter to the job drivers:

* **recv timeout / can-never-match** — a blocked receive surfaces
  ``MPIError`` (the inline scheduler proves non-delivery instantly and
  says "deadlock"; the others wait out the timeout and say "timed out" —
  both are the same contract: raise, never hang);
* **peer death** — when a rank raises, is hard-killed, or abandons a
  collective, every *other* rank blocked on it must fail fast via the
  backend's poison path, and the run must report the original failure,
  not the poison symptom.

This suite is parametrized over the full backend list so a new transport
(tcp was added this way) cannot ship with divergent failure behaviour.
"""

import os
import pickle
import time
from contextlib import contextmanager

import pytest

from repro.common.errors import MPIError
from repro.mpi import mpi_run
from repro.workloads import wordcount_datampi, wordcount_reference

ALL_BACKENDS = ("thread", "shm", "inline", "tcp")

#: Backends whose ranks are OS processes a hard kill can take out.
PROCESS_BACKENDS = ("shm", "tcp")

#: Timeout given to receives that must be cut short by peer death.
LONG_RECV = 60.0

# Named test tags (RPL003: no literal ints at send/recv call sites).
TAG_NEVER_SENT = 7
TAG_BLOCKED = 3
TAG_NOISE = 1
TAG_OTHER = 2
TAG_CHUNK = 5

#: A poisoned rank must fail well inside this monotonic budget.  The
#: property under test is "poison cut the 60s receive short", so the
#: budget is half the receive timeout — generous enough that a loaded
#: CI runner cannot flake it, while still proving the receive never ran
#: to its timeout.
FAIL_FAST_BUDGET = LONG_RECV / 2


@contextmanager
def fail_fast():
    """Assert the block finished before a generous monotonic deadline."""
    deadline = time.monotonic() + FAIL_FAST_BUDGET
    yield
    overshoot = time.monotonic() - deadline
    assert overshoot < 0, (
        f"expected fail-fast poison well inside {FAIL_FAST_BUDGET}s, "
        f"overshot the deadline by {overshoot:.1f}s — the rank likely "
        f"waited out its receive timeout instead"
    )


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    return request.param


@pytest.fixture(params=PROCESS_BACKENDS)
def process_backend(request):
    return request.param


class TestRecvTimeout:
    def test_unsatisfiable_recv_raises_mpierror(self, backend):
        """Nobody ever sends tag 7: MPIError, never a hang."""

        def main(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=TAG_NEVER_SENT, timeout=0.3)
            return None

        with fail_fast(), pytest.raises(MPIError, match="timed out|deadlock"):
            mpi_run(2, main, transport=backend)

    def test_single_rank_self_deadlock(self, backend):
        def main(comm):
            comm.recv(source=0, tag=TAG_BLOCKED, timeout=0.2)

        with pytest.raises(MPIError, match="timed out|deadlock|rank 0"):
            mpi_run(1, main, transport=backend)

    def test_mismatched_tag_does_not_satisfy_recv(self, backend):
        """Selective receive must not be satisfied by a near-miss; the
        timeout error is the proof the message was (correctly) skipped."""

        def main(comm):
            if comm.rank == 0:
                comm.send(1, "noise", tag=TAG_NOISE)
                return None
            comm.recv(source=0, tag=TAG_OTHER, timeout=0.3)
            return None

        with pytest.raises(MPIError, match="timed out|deadlock"):
            mpi_run(2, main, transport=backend)


class TestPeerDeath:
    def test_original_error_wins_over_poison(self, backend):
        """The run reports the rank that *caused* the failure, not the
        ranks that were poisoned awake by it."""

        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("the original failure")
            comm.recv(source=0, tag=TAG_BLOCKED, timeout=LONG_RECV)

        with pytest.raises(MPIError, match="the original failure"):
            mpi_run(2, main, transport=backend)

    def test_blocked_recv_fails_fast_after_peer_death(self, backend):
        """Peer death must cut a long-timeout receive short."""

        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(source=0, tag=TAG_BLOCKED, timeout=LONG_RECV)

        with fail_fast(), pytest.raises(MPIError):
            mpi_run(3, main, transport=backend)

    def test_blocked_barrier_fails_fast_after_peer_death(self, backend):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("no barrier for you")
            comm.barrier(timeout=LONG_RECV)

        with fail_fast(), pytest.raises(MPIError):
            mpi_run(3, main, transport=backend)

    def test_blocked_collective_fails_fast_after_peer_death(self, backend):
        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("gather will never complete")
            return comm.gather(comm.rank, root=0)

        with fail_fast(), pytest.raises(MPIError, match="gather will never complete"):
            mpi_run(3, main, transport=backend)


class TestHardKill:
    """SIGKILL-grade death: the rank reports nothing, its process simply
    vanishes.  Only the process backends can lose a rank this way."""

    def test_killed_rank_is_reported_not_awaited(self, process_backend):
        def main(comm):
            if comm.rank == 0:
                os._exit(17)  # no exception, no cleanup, no goodbye
            comm.recv(source=0, tag=TAG_BLOCKED, timeout=LONG_RECV)

        with fail_fast(), pytest.raises(MPIError, match="died without reporting|aborted|peer"):
            mpi_run(2, main, transport=process_backend)

    def test_killed_rank_unblocks_whole_world(self, process_backend):
        def main(comm):
            if comm.rank == 1:
                os._exit(1)
            comm.barrier(timeout=LONG_RECV)

        with fail_fast(), pytest.raises(MPIError):
            mpi_run(4, main, transport=process_backend)

    def test_survivor_results_are_not_fabricated(self, process_backend):
        """After a kill, the launcher must raise — never return a result
        list with holes where the dead rank's value would be."""

        def main(comm):
            if comm.rank == 0:
                os._exit(3)
            return "survivor"

        with pytest.raises(MPIError):
            mpi_run(2, main, transport=process_backend)


class TestDataPlaneNeverPickles:
    """Acceptance for the typed binary codec: ``bytes`` chunk payloads
    must cross every backend without passing through ``pickle``.

    The canary replaces ``pickle.dumps`` with a wrapper that raises the
    moment a top-level bytes-like object is serialized.  Control-plane
    objects (tuples, EOF ``None`` markers, outcome reports) may still
    pickle — only the data plane is under test.  Fork-based backends
    (shm, tcp) inherit the patched function, so a violation in a child
    process surfaces as that rank's error and fails the run loudly.
    """

    @pytest.fixture(autouse=True)
    def _pickle_canary(self, monkeypatch):
        real_dumps = pickle.dumps

        def guard(obj, *args, **kwargs):
            if isinstance(obj, (bytes, bytearray, memoryview)):
                raise AssertionError(
                    "data-plane violation: a bytes payload reached "
                    "pickle.dumps"
                )
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(pickle, "dumps", guard)

    def test_bytes_payloads_skip_pickle(self, backend):
        """A ring of raw byte chunks (several below and one above the shm
        batch threshold) must be delivered as ``bytes``, unpickled."""

        def main(comm):
            peer = (comm.rank + 1) % comm.size
            chunks = [b"chunk-%03d" % i for i in range(20)]
            chunks.append(b"x" * (64 * 1024))  # past any batch threshold
            for chunk in chunks:
                comm.send(peer, chunk, tag=TAG_CHUNK)
            comm.send(peer, bytearray(b"mutable"), tag=TAG_CHUNK)
            source = (comm.rank - 1) % comm.size
            got = [comm.recv(source=source, tag=TAG_CHUNK) for _ in range(22)]
            assert all(isinstance(m.payload, bytes) for m in got)
            return sum(len(m.payload) for m in got)

        expected = sum(len(c) for c in
                       [b"chunk-%03d" % i for i in range(20)]) + 64 * 1024 + 7
        assert mpi_run(3, main, transport=backend) == [expected] * 3

    def test_datampi_job_runs_under_canary(self, backend):
        """A full O/A job (encoded chunks + control traffic) completes
        with the canary armed: the chunks travelled FMT_RAW end to end."""

        lines = [f"alpha beta gamma delta line {i}" for i in range(40)]
        counts = wordcount_datampi(lines, 2, transport=backend)
        assert counts == wordcount_reference(lines)

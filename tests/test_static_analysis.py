"""repro-lint: per-checker fixtures, pragma suppression, CLI contract.

Every RPL code gets at least one true-positive fixture (the rule fires on
the violation it was built for) and one clean-negative fixture (the
idiomatic fix passes).  Fixtures are source strings linted *as though*
they lived at a path that puts them in the checker's scope — the same
``run_source`` entry point the file driver uses.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import cli as lint_cli
from repro.analysis.core import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    JSON_SCHEMA_VERSION,
    AnalysisError,
    all_codes,
    checker_registry,
    run_paths,
    run_source,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SRC_PATH = "src/repro/experiments/example.py"  # generic in-package path


def lint(source: str, path: str = SRC_PATH, select: list[str] | None = None):
    return run_source(textwrap.dedent(source), path, select=select)


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestRegistry:
    def test_all_seven_checkers_registered(self):
        assert all_codes() == [f"RPL00{i}" for i in range(1, 8)]

    def test_registry_metadata_complete(self):
        for code, cls in checker_registry().items():
            assert cls.code == code
            assert cls.name and cls.description


class TestDataPlanePickleBan:
    DATA_PLANE = "src/repro/storage/spill.py"

    def test_pickle_call_in_data_plane_flagged(self):
        findings = lint(
            """
            import pickle

            def seal(payload):
                return pickle.dumps(payload)
            """,
            path=self.DATA_PLANE,
        )
        assert codes(findings) == ["RPL001"]
        assert "pickle.dumps" in findings[0].message

    def test_from_pickle_import_flagged(self):
        findings = lint("from pickle import loads\n", path=self.DATA_PLANE)
        assert codes(findings) == ["RPL001"]

    def test_codec_control_plane_allowlisted(self):
        source = """
        import pickle

        def encode_payload(obj):
            return pickle.dumps(obj, protocol=5)

        def decode_payload(fmt, data):
            return pickle.loads(data)
        """
        assert lint(source, path="src/repro/mpi/transport/codec.py") == []

    def test_pickle_outside_codec_allowlist_flagged(self):
        findings = lint(
            """
            import pickle

            def helper(obj):
                return pickle.dumps(obj)
            """,
            path="src/repro/mpi/transport/codec.py",
        )
        assert codes(findings) == ["RPL001"]

    def test_non_data_plane_module_out_of_scope(self):
        source = "import pickle\npickle.dumps(1)\n"
        assert lint(source, path="src/repro/experiments/matrix.py") == []


class TestResourceLifecycle:
    def test_unreleased_mkstemp_flagged(self):
        findings = lint(
            """
            import tempfile

            def spill():
                fd, path = tempfile.mkstemp()
                return path
            """
        )
        assert codes(findings) == ["RPL002"]
        assert "fd" in findings[0].message and "path" in findings[0].message

    def test_try_finally_release_passes(self):
        source = """
        import os
        import tempfile

        def spill(payload):
            fd, path = tempfile.mkstemp()
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
                os.unlink(path)
            return path
        """
        assert lint(source) == []

    def test_fdopen_ownership_transfer_passes(self):
        source = """
        import os
        import tempfile

        def spill(payload):
            fd, path = tempfile.mkstemp()
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
            except BaseException:
                os.unlink(path)
                raise
            return path
        """
        assert lint(source) == []

    def test_self_attribute_lifecycle_passes(self):
        source = """
        from multiprocessing import shared_memory

        class Ring:
            def __init__(self, nbytes):
                self._shm = shared_memory.SharedMemory(create=True, size=nbytes)

            def close(self):
                self._shm.close()
        """
        assert lint(source) == []

    def test_unguarded_socket_flagged(self):
        findings = lint(
            """
            import socket

            def connect(addr):
                sock = socket.create_connection(addr)
                sock.sendall(b"hi")
            """
        )
        assert codes(findings) == ["RPL002"]


class TestTagDiscipline:
    def test_literal_positional_tag_flagged(self):
        findings = lint(
            """
            def exchange(comm):
                comm.send(1, b"payload", 5)
            """
        )
        assert codes(findings) == ["RPL003"]
        assert "literal tag 5" in findings[0].message

    def test_literal_tag_keyword_flagged(self):
        findings = lint(
            """
            def exchange(comm):
                return comm.recv(0, tag=9)
            """
        )
        assert codes(findings) == ["RPL003"]

    def test_named_constant_tag_passes(self):
        source = """
        TAG_DATA = 5

        def exchange(comm):
            comm.send(1, b"payload", TAG_DATA)
            return comm.recv(0, tag=TAG_DATA)
        """
        assert lint(source) == []

    def test_literal_recv_positional_tag_flagged(self):
        findings = lint(
            """
            def exchange(comm):
                return comm.recv(0, 7)
            """
        )
        assert codes(findings) == ["RPL003"]


class TestSleepBan:
    def test_time_sleep_flagged_in_src(self):
        findings = lint(
            """
            import time

            def wait():
                time.sleep(0.1)
            """
        )
        assert codes(findings) == ["RPL004"]

    def test_bare_sleep_import_flagged(self):
        findings = lint(
            """
            from time import sleep

            def wait():
                sleep(0.1)
            """
        )
        assert codes(findings) == ["RPL004"]

    def test_test_files_in_scope(self):
        findings = lint(
            """
            import time

            def test_flaky():
                time.sleep(1.0)
            """,
            path="tests/test_example.py",
        )
        assert codes(findings) == ["RPL004"]

    def test_faultinject_execute_allowlisted(self):
        source = """
        import time

        def _execute(action, amount):
            time.sleep(amount)
        """
        assert lint(source, path="src/repro/mpi/faultinject.py") == []

    def test_unrelated_module_sleep_elsewhere_still_flagged(self):
        source = """
        import time

        def other():
            time.sleep(1)
        """
        findings = lint(source, path="src/repro/mpi/faultinject.py")
        assert codes(findings) == ["RPL004"]


class TestDeprecatedShimBan:
    def test_shim_import_flagged(self):
        findings = lint("from repro.datampi.kvcache import KVCache\n")
        assert codes(findings) == ["RPL005"]

    def test_shim_submodule_import_flagged(self):
        findings = lint("from repro.datampi import receiver\n")
        assert codes(findings) == ["RPL005"]

    def test_legacy_conf_kwarg_flagged(self):
        findings = lint(
            """
            def build(conf_cls):
                return conf_cls  # placeholder

            def make():
                from repro.datampi.job import DataMPIConf
                return DataMPIConf(o_tasks=2, a_tasks=2, cache_bytes=8)
            """
        )
        assert codes(findings) == ["RPL005"]
        assert "cache_bytes" in findings[0].message

    def test_storage_config_passes(self):
        source = """
        from repro.storage import StorageConfig

        def make(conf_cls):
            return conf_cls(o_tasks=2, storage=StorageConfig(cache_bytes=8))
        """
        assert lint(source) == []

    def test_shim_implementation_files_exempt(self):
        source = "from repro.datampi.receiver import Receiver\n"
        assert lint(source, path="src/repro/datampi/kvcache.py") == []

    def test_tests_out_of_scope(self):
        # The shims exist so external callers keep working; tests cover them.
        source = "from repro.datampi.kvcache import KVCache\n"
        assert lint(source, path="tests/test_shims.py") == []


class TestFaultPointCoverage:
    DRIVER_PATH = "src/repro/datampi/engine.py"

    def test_uninstrumented_superstep_driver_flagged(self):
        findings = lint(
            """
            def run_superstep(comm, window):
                for record in window:
                    comm.send(0, record, TAG_DATA)
            """,
            path=self.DRIVER_PATH,
        )
        assert codes(findings) == ["RPL006"]

    def test_fire_point_passes(self):
        source = """
        from repro.mpi import faultinject

        def run_superstep(comm, window):
            faultinject.fire("superstep", rank=comm.rank)
            for record in window:
                comm.send(0, record, TAG_DATA)
        """
        assert lint(source, path=self.DRIVER_PATH) == []

    def test_delegating_driver_passes(self):
        source = """
        def _rank_loop(comm, plan):
            for window in plan:
                run_superstep(comm, window)
        """
        assert lint(source, path="src/repro/serving/pool.py") == []

    def test_uninstrumented_rank_loop_flagged(self):
        findings = lint(
            """
            def _rank_loop(comm, plan):
                for window in plan:
                    comm.barrier()
            """,
            path="src/repro/serving/pool.py",
        )
        assert codes(findings) == ["RPL006"]

    def test_non_driver_modules_out_of_scope(self):
        source = """
        def run_superstep(comm, window):
            pass
        """
        assert lint(source, path="src/repro/experiments/matrix.py") == []


class TestLockDiscipline:
    def test_unlocked_access_flagged(self):
        findings = lint(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._seq = 0  #: guarded-by _lock

                def bump(self):
                    self._seq += 1
            """
        )
        assert codes(findings) == ["RPL007"]
        assert "_seq" in findings[0].message and "bump" in findings[0].message

    def test_locked_access_passes(self):
        source = """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._seq = 0  #: guarded-by _lock

            def bump(self):
                with self._lock:
                    self._seq += 1
        """
        assert lint(source) == []

    def test_locked_suffix_method_exempt(self):
        source = """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._seq = 0  #: guarded-by _lock

            def _bump_locked(self):
                self._seq += 1
        """
        assert lint(source) == []

    def test_access_under_wrong_lock_flagged(self):
        findings = lint(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self._seq = 0  #: guarded-by _lock

                def bump(self):
                    with self._other:
                        self._seq += 1
            """
        )
        assert codes(findings) == ["RPL007"]

    def test_unannotated_attributes_out_of_scope(self):
        source = """
        class Pool:
            def __init__(self):
                self._seq = 0

            def bump(self):
                self._seq += 1
        """
        assert lint(source) == []


class TestPragmaSuppression:
    def test_pragma_suppresses_on_reported_line(self):
        source = """
        import time

        def wait():
            time.sleep(0.1)  # repro: allow[RPL004] deadline-bounded by caller
        """
        assert lint(source) == []

    def test_pragma_is_code_specific(self):
        source = """
        import time

        def wait():
            time.sleep(0.1)  # repro: allow[RPL002]
        """
        assert codes(lint(source)) == ["RPL004"]

    def test_pragma_multiple_codes(self):
        source = """
        import time

        def exchange(comm):
            time.sleep(0.1)  # repro: allow[RPL004, RPL003]
            comm.send(1, b"x", 5)  # repro: allow[RPL003]
        """
        assert lint(source) == []

    def test_pragma_on_other_line_does_not_leak(self):
        source = """
        import time

        # repro: allow[RPL004]
        def wait():
            time.sleep(0.1)
        """
        assert codes(lint(source)) == ["RPL004"]


class TestDriversAndCli:
    def test_select_filters_checkers(self):
        source = """
        import time

        def exchange(comm):
            time.sleep(0.1)
            comm.send(1, b"x", 5)
        """
        # Findings sort by position, so the sleep (earlier line) leads.
        assert codes(lint(source)) == ["RPL004", "RPL003"]
        assert codes(lint(source, select=["RPL004"])) == ["RPL004"]
        assert codes(lint(source, select=["rpl003"])) == ["RPL003"]

    def test_unknown_select_code_raises(self):
        with pytest.raises(AnalysisError, match="unknown checker code"):
            lint("x = 1\n", select=["RPL999"])

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="syntax error"):
            lint("def broken(:\n")

    def _write(self, tmp_path, name, body) -> pathlib.Path:
        target = tmp_path / "src" / "repro" / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body))
        return target

    def test_exit_code_contract(self, tmp_path, capsys):
        clean = self._write(tmp_path, "clean.py", "VALUE = 1\n")
        dirty = self._write(
            tmp_path,
            "dirty.py",
            """
            import time

            def wait():
                time.sleep(1)
            """,
        )
        assert lint_cli.run_lint([str(clean)]) == EXIT_CLEAN
        assert lint_cli.run_lint([str(dirty)]) == EXIT_FINDINGS
        assert lint_cli.run_lint([str(tmp_path / "absent.py")]) == EXIT_ERROR
        assert lint_cli.run_lint([str(clean)], select=["RPL999"]) == EXIT_ERROR
        capsys.readouterr()

    def test_json_output_schema_stable(self, tmp_path, capsys):
        dirty = self._write(
            tmp_path,
            "dirty.py",
            """
            import time

            def wait():
                time.sleep(1)
            """,
        )
        code = lint_cli.run_lint([str(dirty)], output_format="json")
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert payload["files_checked"] == 1
        assert len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert sorted(finding) == [
            "checker", "code", "col", "line", "message", "path",
        ]
        assert finding["code"] == "RPL004"
        assert finding["checker"] == "sleep-ban"

    def test_list_checkers(self, capsys):
        assert lint_cli.run_lint([], list_checkers=True) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out

    def test_repro_cli_wires_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--list-checkers"]) == EXIT_CLEAN
        assert "RPL001" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        clean = self._write(tmp_path, "clean.py", "VALUE = 1\n")
        env_src = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(clean)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_CLEAN, proc.stderr


class TestRepositoryIsClean:
    def test_src_and_tests_lint_clean_at_head(self):
        """The meta-gate: the tree this test runs in must pass its own
        linter — exactly what the CI static-analysis job enforces."""
        findings, files_checked = run_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"]
        )
        assert files_checked > 100
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.code} {f.message}" for f in findings
        )


class TestMypyStrictSubset:
    def test_strict_subset_passes(self):
        """Mirror of the CI mypy gate; skipped where mypy is not installed."""
        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed in this environment")
        proc = subprocess.run(
            ["mypy", "-p", "repro.common", "-p", "repro.storage",
             "-m", "repro.mpi.transport.codec"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

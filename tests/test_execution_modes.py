"""Iteration & Streaming execution modes: driver semantics.

Covers the superstep protocol (state broadcast, input scatter vs cache,
outcome gather), convergence, per-iteration byte accounting, cross-window
state, and the control-channel failure path that keeps a killed superstep
from wedging any transport.
"""

import pytest

from repro.common.errors import ConfigError, MPIError
from repro.datampi import (
    A_OUTPUT_KEY,
    DataMPIConf,
    DataMPIJob,
    IterativeJob,
    StreamingJob,
)
from repro.workloads import chunk_lines, merge_window_counts, wordcount_streaming


def counting_o(ctx, split, _state):
    for item in split:
        ctx.send(item % 5, 1)


def counting_a(ctx, _state):
    return [(key, sum(values)) for key, values in ctx.grouped()]


def sum_update(state, merged, _iteration):
    new_state = state + sum(count for _key, count in merged)
    return new_state, new_state >= 30


def make_iterative(mode="iteration", max_iterations=5, **conf_kwargs):
    return IterativeJob(
        counting_o, counting_a, sum_update,
        DataMPIConf(num_o=2, num_a=2, mode=mode, **conf_kwargs),
        max_iterations=max_iterations,
    )


SPLITS = [list(range(5)), list(range(5, 10))]  # 10 records per superstep


class TestIterativeJob:
    def test_converges_when_update_says_done(self):
        result = make_iterative().run(SPLITS, 0)
        assert result.state == 30
        assert result.iterations == 3
        assert result.converged

    def test_stops_at_max_iterations(self):
        result = make_iterative(max_iterations=2).run(SPLITS, 0)
        assert result.iterations == 2
        assert not result.converged
        assert result.state == 20

    def test_outputs_are_final_iteration(self):
        result = make_iterative().run(SPLITS, 0)
        assert dict(result.merged_outputs()) == {k: 2 for k in range(5)}

    def test_common_mode_matches_iteration_mode(self):
        common = make_iterative(mode="common").run(SPLITS, 0)
        iterative = make_iterative(mode="iteration").run(SPLITS, 0)
        assert common.state == iterative.state
        assert common.iterations == iterative.iterations
        assert common.merged_outputs() == iterative.merged_outputs()

    def test_iteration_mode_scatters_once(self):
        result = make_iterative().run(SPLITS, 0)
        scatters = [r["mode.scatter_bytes"] for r in result.per_iteration]
        # Iteration 1 moves the input; later iterations only tiny cached acks.
        assert scatters[0] > scatters[1]
        assert scatters[1] == scatters[2]
        hits = [r["cache.hits"] for r in result.per_iteration]
        assert hits[0] == 0 and all(h == 2 for h in hits[1:])

    def test_common_mode_rescatters_every_iteration(self):
        result = make_iterative(mode="common").run(SPLITS, 0)
        scatters = [r["mode.scatter_bytes"] for r in result.per_iteration]
        assert len(set(scatters)) == 1 and scatters[0] > 0
        assert all(r["cache.hits"] == 0 for r in result.per_iteration)

    def test_iteration_moves_fewer_bytes_after_first(self):
        common = make_iterative(mode="common").run(SPLITS, 0)
        iterative = make_iterative(mode="iteration").run(SPLITS, 0)
        pairs = zip(common.per_iteration, iterative.per_iteration)
        for index, (c, i) in enumerate(pairs):
            if index == 0:
                assert c["mode.bytes_moved"] == i["mode.bytes_moved"]
            else:
                assert i["mode.bytes_moved"] < c["mode.bytes_moved"]

    def test_tiny_cache_falls_back_to_rescatter(self):
        # A cache too small for the splits must reject them and re-scatter
        # every iteration — degraded to common-mode traffic, same answer.
        small = make_iterative(cache_bytes=8).run(SPLITS, 0)
        baseline = make_iterative().run(SPLITS, 0)
        assert small.state == baseline.state
        scatters = [r["mode.scatter_bytes"] for r in small.per_iteration]
        assert scatters[0] == scatters[1] == scatters[2]
        assert sum(r["cache.rejected"] for r in small.per_iteration) > 0

    def test_previous_output_pinned_in_cache(self):
        seen = []

        def a_task(ctx, _state):
            seen.append((ctx.superstep, ctx.cache.get(A_OUTPUT_KEY)))
            return [("n", ctx.superstep)]

        job = IterativeJob(
            counting_o, a_task,
            lambda state, merged, it: (state, it >= 2),
            DataMPIConf(num_o=1, num_a=1, mode="iteration"),
        )
        job.run([list(range(3))], 0)
        assert seen == [(1, None), (2, [("n", 1)])]

    def test_update_sees_iteration_numbers(self):
        iterations = []

        def update(state, _merged, iteration):
            iterations.append(iteration)
            return state, iteration >= 3

        job = IterativeJob(counting_o, counting_a, update,
                           DataMPIConf(num_o=2, num_a=2, mode="iteration"))
        job.run(SPLITS, 0)
        assert iterations == [1, 2, 3]

    def test_per_iteration_records_have_uniform_shape(self):
        result = make_iterative().run(SPLITS, 0)
        keys = {frozenset(record) for record in result.per_iteration}
        assert len(keys) == 1
        record = result.per_iteration[0]
        for name in ("mode.state_bytes", "mode.scatter_bytes",
                     "mode.gather_bytes", "mode.bytes_moved",
                     "o.bytes_sent", "a.bytes_received", "cache.hit_bytes"):
            assert name in record
        assert len(result.timings) == len(result.per_iteration)

    def test_streaming_conf_rejected(self):
        with pytest.raises(ConfigError, match="iteration.*common|common.*iteration"):
            make_iterative(mode="streaming")

    def test_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(ConfigError, match="checkpoint"):
            make_iterative().run(SPLITS, 0, resume=True)


class TestIterativeFailures:
    @pytest.mark.parametrize("transport", ("thread", "shm", "inline"))
    def test_o_task_failure_propagates_with_cause(self, transport):
        def bad_o(ctx, split, state):
            if state >= 10:  # fail in superstep 2 on every O rank
                raise RuntimeError("injected superstep kill")
            counting_o(ctx, split, state)

        job = IterativeJob(
            bad_o, counting_a, sum_update,
            DataMPIConf(num_o=2, num_a=2, mode="iteration", transport=transport),
        )
        with pytest.raises(MPIError, match="injected superstep kill"):
            job.run(SPLITS, 0)

    def test_a_task_failure_propagates(self):
        def bad_a(ctx, _state):
            raise ValueError("a-side kill")

        job = IterativeJob(counting_o, bad_a, sum_update,
                           DataMPIConf(num_o=2, num_a=2, mode="iteration"))
        with pytest.raises(MPIError, match="a-side kill"):
            job.run(SPLITS, 0)

    def test_update_failure_propagates(self):
        def bad_update(_state, _merged, _iteration):
            raise KeyError("update kill")

        job = IterativeJob(counting_o, counting_a, bad_update,
                           DataMPIConf(num_o=2, num_a=2, mode="iteration"))
        with pytest.raises(MPIError, match="update kill"):
            job.run(SPLITS, 0)

    def test_common_mode_failure_propagates(self):
        def bad_o(ctx, split, state):
            raise RuntimeError("common-mode kill")

        job = IterativeJob(bad_o, counting_a, sum_update,
                           DataMPIConf(num_o=2, num_a=2, mode="common"))
        with pytest.raises(MPIError, match="common-mode kill"):
            job.run(SPLITS, 0)


def stream_o(ctx, split):
    for item in split:
        ctx.send(item % 3, 1)


def stream_a(ctx):
    return [(key, sum(values)) for key, values in ctx.grouped()]


class TestStreamingJob:
    def make_job(self, window_splits=2, **conf_kwargs):
        return StreamingJob(
            stream_o, stream_a,
            DataMPIConf(num_o=2, num_a=2, mode="streaming", **conf_kwargs),
            window_splits=window_splits,
        )

    def test_windows_flushed_in_watermark_order(self):
        result = self.make_job().run([[1, 2], [3], [4, 5], [6], [7]])
        assert [w.watermark for w in result.windows] == [1, 2, 3]
        total = sum(c for w in result.windows for _k, c in w.merged_outputs())
        assert total == 7

    def test_window_size_bounds_admission(self):
        result = self.make_job(window_splits=1).run([[n] for n in range(5)])
        assert [w.watermark for w in result.windows] == [1, 2, 3, 4, 5]
        for window in result.windows:
            assert sum(c for _k, c in window.merged_outputs()) == 1

    def test_empty_stream_flushes_nothing(self):
        result = self.make_job().run([])
        assert result.windows == []
        assert result.counters.get("mode.shutdown_bytes", 0) > 0

    def test_consumes_a_generator_lazily(self):
        pulled = []

        def source():
            for index in range(6):
                pulled.append(index)
                yield [index]

        result = self.make_job(window_splits=3).run(source())
        assert pulled == list(range(6))
        assert [w.watermark for w in result.windows] == [1, 2]

    def test_cache_persists_across_windows(self):
        def dedupe_o(ctx, split):
            for item in split:
                if ctx.cache.get(("seen", item)) is None:
                    ctx.cache.put(("seen", item), True)
                    ctx.send(item, 1)

        job = StreamingJob(
            dedupe_o, stream_a,
            DataMPIConf(num_o=1, num_a=1, mode="streaming"),
            window_splits=1,
        )
        result = job.run([[1, 2], [2, 3], [3, 4]])
        assert result.merged_outputs() == [(1, 1), (2, 1), (3, 1), (4, 1)]

    def test_failure_mid_stream_propagates(self):
        def bad_o(ctx, split):
            if split == ["poison"]:
                raise RuntimeError("stream kill")
            stream_o(ctx, [0])

        job = StreamingJob(bad_o, stream_a,
                           DataMPIConf(num_o=2, num_a=2, mode="streaming"),
                           window_splits=2)
        with pytest.raises(MPIError, match="stream kill"):
            job.run([[1], [2], ["poison"], [4]])

    def test_common_conf_rejected(self):
        with pytest.raises(ConfigError, match="streaming"):
            StreamingJob(stream_o, stream_a, DataMPIConf(num_o=1, num_a=1))

    def test_bad_window_splits_rejected(self):
        with pytest.raises(ConfigError, match="window_splits"):
            StreamingJob(stream_o, stream_a,
                         DataMPIConf(num_o=1, num_a=1, mode="streaming"),
                         window_splits=0)


class TestModeConfValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="execution mode"):
            DataMPIConf(mode="turbo")

    def test_bad_cache_bytes_rejected(self):
        with pytest.raises(ConfigError, match="cache_bytes"):
            DataMPIConf(cache_bytes=0)

    def test_datampijob_requires_common_mode(self):
        with pytest.raises(ConfigError, match="Common mode"):
            DataMPIJob(lambda ctx, s: None, lambda ctx: None,
                       DataMPIConf(mode="iteration"))


class TestStreamingWorkloadHelpers:
    def test_chunk_lines_exact_and_remainder(self):
        assert list(chunk_lines(["a", "b", "c", "d", "e"], 2)) == \
            [["a", "b"], ["c", "d"], ["e"]]

    def test_merge_window_counts(self):
        result = wordcount_streaming(["a b", "b c", "a"], parallelism=2,
                                     lines_per_split=1)
        assert merge_window_counts(result) == {"a": 2, "b": 2, "c": 1}

"""Tests for the paper-value registry and report helpers."""

import pytest

from repro import paperdata
from repro.common.units import GB
from repro.experiments.report import (
    improvement_range,
    profile_rows,
    render_table,
    sweep_rows,
)
from repro.perfmodels.runner import AveragedRun


def make_run(framework, seconds, failed=False):
    return AveragedRun(framework=framework, workload="w", input_bytes=8 * GB,
                       elapsed_sec=seconds, failed=failed)


class TestPaperData:
    def test_improvement_math(self):
        assert paperdata.improvement(100.0, 60.0) == pytest.approx(0.40)

    def test_improvement_validates_baseline(self):
        with pytest.raises(ValueError):
            paperdata.improvement(0.0, 1.0)

    def test_stated_sort_numbers(self):
        assert paperdata.TEXT_SORT_8GB_SEC == {
            "hadoop": 117.0, "spark": 114.0, "datampi": 69.0,
        }

    def test_improvement_ranges_well_formed(self):
        for (workload, baseline), (low, high) in paperdata.IMPROVEMENTS.items():
            assert 0.0 <= low <= high < 1.0, (workload, baseline)

    def test_chart_series_keyed_by_bytes(self):
        assert 8 * GB in paperdata.FIG3B_TEXT_SORT["hadoop"]
        assert paperdata.FIG3B_TEXT_SORT["hadoop"][8 * GB] == 117

    def test_claim_tolerance(self):
        claim = paperdata.Claim("fig3b", "8GB hadoop", 117.0, 121.0, 0.15)
        assert claim.within_tolerance
        assert claim.relative_error == pytest.approx(4 / 117)
        bad = paperdata.Claim("fig3b", "8GB hadoop", 117.0, 200.0, 0.15)
        assert not bad.within_tolerance

    def test_claim_zero_paper_value(self):
        claim = paperdata.Claim("x", "y", 0.0, 0.5, 0.1)
        assert claim.relative_error == 0.5


class TestReportHelpers:
    def make_series(self):
        return {
            "hadoop": {8 * GB: make_run("hadoop", 100.0),
                       16 * GB: make_run("hadoop", 200.0)},
            "spark": {8 * GB: make_run("spark", 0.0, failed=True),
                      16 * GB: make_run("spark", 150.0)},
            "datampi": {8 * GB: make_run("datampi", 60.0),
                        16 * GB: make_run("datampi", 130.0)},
        }

    def test_sweep_rows_marks_oom(self):
        rows = sweep_rows(self.make_series())
        assert rows[0][2] == "OOM"
        assert rows[0][1] == "100s"
        assert rows[0][-1] == "40%"

    def test_improvement_range(self):
        low, high = improvement_range(self.make_series())
        assert low == pytest.approx(0.35)
        assert high == pytest.approx(0.40)

    def test_improvement_range_skips_failures(self):
        series = self.make_series()
        low, high = improvement_range(series, baseline="spark")
        # Only the 16GB point has a successful spark run.
        assert low == high == pytest.approx(1 - 130 / 150)

    def test_improvement_range_empty_raises(self):
        series = {
            "hadoop": {8 * GB: make_run("hadoop", 0.0, failed=True)},
            "datampi": {8 * GB: make_run("datampi", 60.0)},
        }
        with pytest.raises(ValueError):
            improvement_range(series)

    def test_render_table_handles_non_strings(self):
        text = render_table(["a"], [[123], [None]])
        assert "123" in text and "None" in text

    def test_profile_rows_shape(self):
        from repro.experiments.figures import ResourceProfile
        profiles = {
            fw: ResourceProfile(
                framework=fw, elapsed_sec=100.0, phase_window=(0, 30),
                cpu_pct=30.0, iowait_pct=5.0, disk_read_mbps=40.0,
                disk_read_phase_mbps=45.0, disk_write_mbps=50.0,
                net_mbps=60.0, mem_gb=5.0,
            )
            for fw in ("hadoop", "spark", "datampi")
        }
        rows = profile_rows(profiles)
        assert len(rows) == 3
        assert rows[0][0] == "hadoop"
        assert rows[0][-1] == "5.0"

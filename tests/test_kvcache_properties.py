"""Property tests for the cross-iteration KV cache.

Invariants: put/get/evict round-trips preserve values (including nested
containers), byte accounting always equals the sum of ``record_size``
over live entries, a capacity bound is never exceeded, and eviction is
strictly LRU.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.kv import record_size
from repro.datampi import KVCache

# Keys must be hashable: scalars and (nested) tuples of scalars.
scalar_keys = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.booleans(),
)
keys = st.one_of(scalar_keys, st.tuples(scalar_keys, scalar_keys))

# Values can be anything the record-size model understands, nested.
scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
values = st.recursive(
    scalar_values,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)


def live_bytes(cache: KVCache) -> int:
    return sum(cache.size_of(key) for key in cache)


class TestRoundTrip:
    @given(key=keys, value=values)
    def test_put_get_round_trips(self, key, value):
        cache = KVCache()
        assert cache.put(key, value)
        assert cache.get(key, "sentinel") == value or value != value  # NaN-free
        assert cache.get(key) == value
        assert key in cache

    @given(key=keys, first=values, second=values)
    def test_overwrite_keeps_last_value_and_reaccounts(self, key, first, second):
        cache = KVCache()
        cache.put(key, first)
        cache.put(key, second)
        assert len(cache) == 1
        assert cache.get(key) == second
        assert cache.used_bytes == record_size(key, second)

    @given(key=keys, value=values)
    def test_evict_removes_and_zeroes_accounting(self, key, value):
        cache = KVCache()
        cache.put(key, value)
        assert cache.evict(key)
        assert key not in cache
        assert cache.used_bytes == 0
        assert cache.get(key, "gone") == "gone"
        assert not cache.evict(key)  # second evict is a no-op

    @given(key=keys, value=values)
    def test_hit_bytes_match_entry_size(self, key, value):
        cache = KVCache()
        cache.put(key, value)
        cache.get(key)
        cache.get(key)
        assert cache.hit_bytes == 2 * record_size(key, value)
        assert cache.hits == 2 and cache.misses == 0


class TestAccounting:
    @given(entries=st.dictionaries(keys, values, max_size=12))
    def test_used_bytes_equals_sum_of_record_sizes(self, entries):
        cache = KVCache()
        for key, value in entries.items():
            cache.put(key, value)
        expected = sum(record_size(k, v) for k, v in entries.items())
        assert cache.used_bytes == expected
        assert cache.used_bytes == live_bytes(cache)

    @given(
        entries=st.lists(st.tuples(keys, values), max_size=16),
        evict_every=st.integers(min_value=2, max_value=4),
    )
    def test_interleaved_puts_and_evicts_stay_consistent(self, entries, evict_every):
        cache = KVCache()
        for index, (key, value) in enumerate(entries):
            cache.put(key, value)
            if index % evict_every == 0:
                cache.evict(key)
        assert cache.used_bytes == live_bytes(cache)
        assert cache.used_bytes >= 0


class TestCapacity:
    @given(
        entries=st.lists(st.tuples(keys, values), min_size=1, max_size=16),
        capacity=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, entries, capacity):
        cache = KVCache(capacity_bytes=capacity)
        for key, value in entries:
            stored = cache.put(key, value)
            assert stored == (record_size(key, value) <= capacity)
            assert cache.used_bytes <= capacity
            assert cache.used_bytes == live_bytes(cache)

    def test_eviction_is_lru(self):
        sizes = record_size("a", b"x" * 40)
        cache = KVCache(capacity_bytes=3 * sizes)
        for key in ("a", "b", "c"):
            cache.put(key, b"x" * 40)
        cache.get("a")  # refresh "a": now "b" is least recently used
        cache.put("d", b"x" * 40)
        assert "b" not in cache
        assert all(key in cache for key in ("a", "c", "d"))
        assert cache.evictions == 1

    def test_oversized_entry_rejected_and_stale_value_dropped(self):
        cache = KVCache(capacity_bytes=64)
        assert cache.put("k", b"small")
        assert not cache.put("k", b"x" * 200)
        # The stale small value must not survive a failed replacement.
        assert "k" not in cache
        assert cache.rejected == 1
        assert cache.used_bytes == 0

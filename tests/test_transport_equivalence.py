"""Cross-backend equivalence: every workload on the DataMPI engine must
produce byte-identical output on the ``thread``, ``shm``, and ``inline``
transports.

Outputs are serialized to bytes with a stable encoder and compared against
the ``thread`` backend's result, so any divergence — ordering, float
summation order, partition routing — fails loudly.  This is the guarantee
that makes the transport layer a pure performance knob.

The mode x transport matrix extends the same guarantee to the Iteration
and Streaming execution modes: merged outputs, per-superstep counters,
and (for iteration mode) the evolved state must be byte-identical on
every backend, because the superstep control traffic (state broadcast,
input scatter, outcome gather) is pickled to bytes before it travels.
"""

import pickle

import pytest

from repro.bigdatabench import TextGenerator
from repro.bigdatabench.vectors import SparseVector
from repro.common.rng import substream
from repro.datampi import DataMPIConf, DataMPIJob
from repro.workloads import (
    generate_labeled_documents,
    grep_datampi,
    grep_reference,
    grep_streaming,
    kmeans_iterative_job,
    merge_window_counts,
    run_kmeans,
    run_naive_bayes,
    sort_reference,
    text_sort_datampi,
    train_datampi_iterative,
    wordcount_datampi,
    wordcount_reference,
    wordcount_streaming,
)

TRANSPORTS = ("thread", "shm", "inline", "tcp")
ALT_TRANSPORTS = tuple(t for t in TRANSPORTS if t != "thread")

LINES = TextGenerator(seed=7).lines(240)
PARALLELISM = 3


def stable_bytes(value) -> bytes:
    """Deterministic byte serialization of a workload output."""
    return pickle.dumps(_canonical(value), protocol=4)


def _canonical(value):
    if isinstance(value, dict):
        # Dict content AND iteration order must agree across backends.
        return ("dict", [( _canonical(k), _canonical(v)) for k, v in value.items()])
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, set):
        return ("set", sorted(value))
    if isinstance(value, SparseVector):
        return ("vec", [(dim, weight) for dim, weight in value.weights.items()])
    return value


@pytest.fixture(params=ALT_TRANSPORTS)
def alt_transport(request):
    return request.param


class TestWorkloadEquivalence:
    def test_sort(self, alt_transport):
        reference = text_sort_datampi(LINES, PARALLELISM, transport="thread")
        assert reference == sort_reference(LINES)
        other = text_sort_datampi(LINES, PARALLELISM, transport=alt_transport)
        assert stable_bytes(other) == stable_bytes(reference)

    def test_wordcount(self, alt_transport):
        reference = wordcount_datampi(LINES, PARALLELISM, transport="thread")
        assert reference == wordcount_reference(LINES)
        other = wordcount_datampi(LINES, PARALLELISM, transport=alt_transport)
        assert stable_bytes(other) == stable_bytes(reference)

    def test_grep(self, alt_transport):
        pattern = r"ba[a-z]*"
        reference = grep_datampi(LINES, pattern, PARALLELISM, transport="thread")
        assert reference == grep_reference(LINES, pattern)
        other = grep_datampi(LINES, pattern, PARALLELISM, transport=alt_transport)
        assert stable_bytes(other) == stable_bytes(reference)

    def test_kmeans(self, alt_transport):
        rng = substream(11, "transport-kmeans")
        vectors = [
            SparseVector({dim: rng.random() for dim in rng.sample(range(12), 4)})
            for _ in range(60)
        ]
        reference = run_kmeans("datampi", vectors, k=4, max_iterations=3,
                               parallelism=PARALLELISM, transport="thread")
        other = run_kmeans("datampi", vectors, k=4, max_iterations=3,
                           parallelism=PARALLELISM, transport=alt_transport)
        # Float-exact: same addition order on every backend (chunk origins
        # canonicalise the merge), so centroids agree to the last bit.
        assert stable_bytes(other.centroids) == stable_bytes(reference.centroids)
        assert other.iterations == reference.iterations
        assert other.converged == reference.converged

    def test_naive_bayes(self, alt_transport):
        documents = generate_labeled_documents(40, words_per_doc=12, seed=3)
        reference = run_naive_bayes("datampi", documents, parallelism=PARALLELISM,
                                    transport="thread")
        other = run_naive_bayes("datampi", documents, parallelism=PARALLELISM,
                                transport=alt_transport)
        for attribute in ("class_term_counts", "class_doc_counts", "vocabulary"):
            assert stable_bytes(getattr(other, attribute)) == \
                stable_bytes(getattr(reference, attribute))


class TestManyChunkEquivalence:
    """Tiny send buffers force many interleaved chunks per destination, the
    regime where arrival order actually varies between backends."""

    @staticmethod
    def _run(transport: str):
        def o_task(ctx, split):
            for index, line in enumerate(split):
                ctx.send(len(line) % 5, (line, index * 0.125))

        def a_task(ctx):
            return [(key, values) for key, values in ctx.grouped()]

        job = DataMPIJob(
            o_task, a_task,
            DataMPIConf(num_o=3, num_a=2, send_buffer_bytes=64,
                        job_name="many-chunks", transport=transport),
        )
        splits = [LINES[index::3] for index in range(3)]
        return job.run(splits)

    def test_outputs_and_counters_match(self, alt_transport):
        reference = self._run("thread")
        other = self._run(alt_transport)
        assert stable_bytes(other.outputs) == stable_bytes(reference.outputs)
        assert other.counters == reference.counters


# -- mode x transport matrix ----------------------------------------------------
#
# Each execution mode runs one representative workload on every backend;
# outputs AND the driver's per-superstep counter records must agree with
# the thread backend byte for byte.

KMEANS_VECTORS = [
    SparseVector({dim: rng.random() for dim in rng.sample(range(12), 4)})
    for rng in [substream(11, "mode-matrix-kmeans")]
    for _ in range(60)
]

DOCUMENTS = generate_labeled_documents(30, words_per_doc=10, seed=5)


def _iteration_kmeans(transport):
    result, stats = kmeans_iterative_job(
        KMEANS_VECTORS, k=4, max_iterations=3, parallelism=PARALLELISM,
        transport=transport,
    )
    return result, stats


def _iteration_naive_bayes(transport):
    model, stats = train_datampi_iterative(
        DOCUMENTS, parallelism=PARALLELISM, transport=transport
    )
    return model, stats


def _streaming_wordcount(transport):
    return wordcount_streaming(LINES, parallelism=PARALLELISM,
                               lines_per_split=30, transport=transport)


def _streaming_grep(transport):
    return grep_streaming(LINES, r"ba[a-z]*", parallelism=PARALLELISM,
                          lines_per_split=30, transport=transport)


class TestModeTransportMatrix:
    """2 modes x 3 transports x 2 workloads, all against the thread run."""

    def test_iteration_kmeans(self, alt_transport):
        reference, ref_stats = _iteration_kmeans("thread")
        other, other_stats = _iteration_kmeans(alt_transport)
        assert stable_bytes(other.centroids) == stable_bytes(reference.centroids)
        assert other.iterations == reference.iterations
        assert other.converged == reference.converged
        assert other_stats.per_iteration == ref_stats.per_iteration
        assert other_stats.counters == ref_stats.counters
        assert stable_bytes(other_stats.merged_outputs()) == \
            stable_bytes(ref_stats.merged_outputs())

    def test_iteration_naive_bayes(self, alt_transport):
        reference, ref_stats = _iteration_naive_bayes("thread")
        other, other_stats = _iteration_naive_bayes(alt_transport)
        for attribute in ("class_term_counts", "class_doc_counts", "vocabulary"):
            assert stable_bytes(getattr(other, attribute)) == \
                stable_bytes(getattr(reference, attribute))
        assert other_stats.per_iteration == ref_stats.per_iteration

    def test_streaming_wordcount(self, alt_transport):
        reference = _streaming_wordcount("thread")
        assert merge_window_counts(reference) == wordcount_reference(LINES)
        other = _streaming_wordcount(alt_transport)
        assert [w.watermark for w in other.windows] == \
            [w.watermark for w in reference.windows]
        for mine, theirs in zip(other.windows, reference.windows):
            assert stable_bytes(mine.outputs) == stable_bytes(theirs.outputs)
            assert mine.counters == theirs.counters
        assert other.counters == reference.counters

    def test_streaming_grep(self, alt_transport):
        reference = _streaming_grep("thread")
        assert merge_window_counts(reference) == \
            grep_reference(LINES, r"ba[a-z]*")
        other = _streaming_grep(alt_transport)
        assert stable_bytes([w.outputs for w in other.windows]) == \
            stable_bytes([w.outputs for w in reference.windows])
        assert other.counters == reference.counters

    def test_iteration_mode_agrees_with_common_mode_across_transports(
        self, alt_transport
    ):
        """The mode axis itself: iteration-mode centroids equal the
        one-job-per-iteration baseline's on every backend."""
        baseline = run_kmeans("datampi", KMEANS_VECTORS, k=4, max_iterations=3,
                              parallelism=PARALLELISM, transport="thread")
        other, _stats = _iteration_kmeans(alt_transport)
        assert stable_bytes(other.centroids) == stable_bytes(baseline.centroids)

"""Cross-layer property-based tests (hypothesis).

These pin down invariants that must hold for *any* input, not just the
paper's configurations: conservation of records through the engines,
monotonicity of the performance models, and determinism everywhere.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.units import GB, MB
from repro.datampi import DataMPIConf, DataMPIJob
from repro.hadoop import HadoopConf, MapReduceJob
from repro.perfmodels import simulate_once
from repro.spark import SparkContext

# Keyed records with text keys and small int values.
records_strategy = st.lists(
    st.tuples(st.text(alphabet="abcdef", min_size=1, max_size=6),
              st.integers(min_value=-100, max_value=100)),
    max_size=80,
)


def reference_group_sum(records):
    table = {}
    for key, value in records:
        table[key] = table.get(key, 0) + value
    return table


class TestEngineConservation:
    """No engine may ever lose, duplicate, or corrupt records."""

    @settings(max_examples=25, deadline=None)
    @given(records_strategy, st.integers(min_value=1, max_value=4))
    def test_hadoop_group_sum(self, records, reduces):
        job = MapReduceJob(
            lambda k, v: [(k, v)],
            lambda k, vs: [(k, sum(vs))],
            HadoopConf(num_reduces=reduces),
        )
        result = job.run([records])
        assert {kv.key: kv.value for kv in result.merged_outputs()} == \
            reference_group_sum(records)

    @settings(max_examples=25, deadline=None)
    @given(records_strategy, st.integers(min_value=1, max_value=4))
    def test_spark_group_sum(self, records, partitions):
        ctx = SparkContext(default_parallelism=partitions)
        rdd = ctx.parallelize(records, partitions).reduce_by_key(lambda a, b: a + b)
        assert dict(rdd.collect()) == reference_group_sum(records)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(records_strategy)
    def test_datampi_group_sum(self, records):
        def o_task(ctx, split):
            for key, value in split:
                ctx.send(key, value)

        def a_task(ctx):
            return [(key, sum(values)) for key, values in ctx.grouped()]

        job = DataMPIJob(o_task, a_task, DataMPIConf(num_o=2, num_a=2))
        result = job.run([records[::2], records[1::2]])
        assert dict(result.merged_outputs()) == reference_group_sum(records)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.text(alphabet="xyz", min_size=1, max_size=5),
                    min_size=1, max_size=60))
    def test_spark_sort_matches_sorted(self, keys):
        ctx = SparkContext(default_parallelism=3, memory_capacity=64 * MB)
        rdd = ctx.parallelize([(k, None) for k in keys], 3).sort_by_key(3)
        assert [k for k, _ in rdd.collect()] == sorted(keys)


class TestModelMonotonicity:
    """More data never makes a simulated job faster."""

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(["hadoop", "spark", "datampi"]),
           st.sampled_from(["grep", "wordcount", "kmeans"]),
           st.integers(min_value=2, max_value=24))
    def test_time_monotone_in_input(self, framework, workload, size_gb):
        small = simulate_once(framework, workload, size_gb * GB, seed=0)
        large = simulate_once(framework, workload, 2 * size_gb * GB, seed=0)
        assert large.result.elapsed_sec > small.result.elapsed_sec * 0.99

    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(["hadoop", "datampi"]),
           st.integers(min_value=4, max_value=32))
    def test_datampi_always_beats_hadoop(self, _fw, size_gb):
        hadoop = simulate_once("hadoop", "grep", size_gb * GB, seed=0)
        datampi = simulate_once("datampi", "grep", size_gb * GB, seed=0)
        assert datampi.result.elapsed_sec < hadoop.result.elapsed_sec

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=99))
    def test_simulation_deterministic(self, slots, seed):
        a = simulate_once("datampi", "wordcount", 4 * GB, slots=slots, seed=seed)
        b = simulate_once("datampi", "wordcount", 4 * GB, slots=slots, seed=seed)
        assert a.result.elapsed_sec == b.result.elapsed_sec
        assert a.result.phases == b.result.phases


class TestResourceConservationUnderSim:
    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(["hadoop", "spark", "datampi"]),
           st.integers(min_value=4, max_value=16))
    def test_input_read_exactly_once(self, framework, size_gb):
        """Every framework reads each input byte from disk at least once;
        sorts with sampling read at most twice."""
        outcome = simulate_once(framework, "grep", size_gb * GB, seed=1)
        total_read = sum(n.disk_read.total_served for n in outcome.cluster.nodes)
        assert total_read >= size_gb * GB * 0.99
        assert total_read <= size_gb * GB * 2.01

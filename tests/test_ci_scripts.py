"""The CI gate scripts: report determinism diff + benchmark baseline check."""

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


diff_reports = _load("diff_reports")
check_bench = _load("check_bench_regression")


class TestDiffReports:
    def _dirs(self, tmp_path, left: dict, right: dict):
        a, b = tmp_path / "a", tmp_path / "b"
        for directory, files in ((a, left), (b, right)):
            directory.mkdir()
            for name, content in files.items():
                (directory / name).write_text(content)
        return a, b

    def test_identical_dirs_pass(self, tmp_path):
        files = {"index.md": "# hi\n", "speedup.json": "{}"}
        a, b = self._dirs(tmp_path, files, dict(files))
        assert diff_reports.compare_reports(a, b) == []
        assert diff_reports.main([str(a), str(b)]) == 0

    def test_volatile_artifacts_are_skipped(self, tmp_path):
        a, b = self._dirs(
            tmp_path,
            {"index.md": "# hi\n", "timings.json": '{"wall": 1}'},
            {"index.md": "# hi\n", "timings.json": '{"wall": 2}'},
        )
        assert diff_reports.compare_reports(a, b) == []
        # ... unless explicitly included
        assert diff_reports.main([str(a), str(b), "--include-volatile"]) == 1

    def test_content_difference_is_reported_with_line(self, tmp_path):
        a, b = self._dirs(
            tmp_path,
            {"index.md": "line1\nline2\n"},
            {"index.md": "line1\nCHANGED\n"},
        )
        problems = diff_reports.compare_reports(a, b)
        assert problems == ["index.md: differs (first difference at line 2)"]
        assert diff_reports.main([str(a), str(b)]) == 1

    def test_missing_artifact_is_reported(self, tmp_path):
        a, b = self._dirs(
            tmp_path,
            {"index.md": "x", "speedup.md": "y"},
            {"index.md": "x"},
        )
        problems = diff_reports.compare_reports(a, b)
        assert len(problems) == 1 and "only in" in problems[0]

    def test_missing_directory_is_usage_error(self, tmp_path):
        assert diff_reports.main([str(tmp_path / "no"), str(tmp_path)]) == 2

    def test_default_volatile_set_matches_reportbuilder(self):
        from repro.experiments.reportbuilder import VOLATILE_ARTIFACTS

        assert diff_reports.DEFAULT_VOLATILE == frozenset(VOLATILE_ARTIFACTS)
        assert diff_reports.volatile_artifacts() == \
            frozenset(VOLATILE_ARTIFACTS)


def _bench(fullname: str, extra_info: dict, median: float = 0.01) -> dict:
    return {"fullname": fullname, "extra_info": extra_info,
            "stats": {"median": median}}


class TestCheckBenchRegression:
    BASELINE = {
        "suites": [
            {"match": "test_transport", "min_count": 2,
             "require_extra_info": ["transport", "bytes_moved"],
             "require_positive": ["bytes_moved"],
             "median_sec": 0.01},
            {"match": "test_matrix", "min_count": 1,
             "require_extra_info": ["cells"]},
        ]
    }

    def good_report(self) -> dict:
        return {"benchmarks": [
            _bench("bench.py::test_transport[a]",
                   {"transport": "a", "bytes_moved": 1}),
            _bench("bench.py::test_transport[b]",
                   {"transport": "b", "bytes_moved": 2}),
            _bench("bench.py::test_matrix", {"cells": 12}),
        ]}

    def test_good_report_passes(self):
        assert check_bench.check(self.good_report(), self.BASELINE) == []

    def test_zero_benchmarks_fails(self):
        problems = check_bench.check({"benchmarks": []}, self.BASELINE)
        assert problems and "collection error" in problems[0]

    def test_missing_suite_fails(self):
        report = self.good_report()
        report["benchmarks"] = report["benchmarks"][2:]
        problems = check_bench.check(report, self.BASELINE)
        assert any("test_transport" in p and "expected >= 2" in p
                   for p in problems)

    def test_missing_extra_info_key_fails(self):
        report = self.good_report()
        del report["benchmarks"][0]["extra_info"]["bytes_moved"]
        problems = check_bench.check(report, self.BASELINE)
        assert problems == [
            "bench.py::test_transport[a]: extra_info missing bytes_moved",
            "bench.py::test_transport[a]: extra_info['bytes_moved'] must "
            "be a positive number, got None",
        ]

    def test_zero_throughput_fails_positive_gate(self):
        """Present-but-zero counters are broken measurements, not slow
        machines: the structural gate must reject them."""
        report = self.good_report()
        report["benchmarks"][1]["extra_info"]["bytes_moved"] = 0
        problems = check_bench.check(report, self.BASELINE)
        assert problems == [
            "bench.py::test_transport[b]: extra_info['bytes_moved'] must "
            "be a positive number, got 0"
        ]

    def test_non_numeric_positive_key_fails(self):
        report = self.good_report()
        report["benchmarks"][0]["extra_info"]["bytes_moved"] = "12"
        problems = check_bench.check(report, self.BASELINE)
        assert any("must be a positive number, got '12'" in p
                   for p in problems)

    def test_committed_baseline_gates_transport_throughput(self):
        """Every transport suite in the committed baseline must demand a
        positive bytes_per_sec — the codec PR's measured-throughput
        contract."""
        baseline = json.loads(
            (REPO_ROOT / "benchmarks" / "baseline.json").read_text())
        transport_suites = [s for s in baseline["suites"]
                            if "test_transport_backends" in s["match"]]
        assert len(transport_suites) == 3
        for suite in transport_suites:
            assert "bytes_per_sec" in suite["require_extra_info"]
            assert "bytes_per_sec" in suite["require_positive"]

    def test_slowdown_gate_is_opt_in(self):
        report = self.good_report()
        for bench in report["benchmarks"]:
            bench["stats"]["median"] = 99.0
        assert check_bench.check(report, self.BASELINE) == []
        problems = check_bench.check(report, self.BASELINE, max_slowdown=20)
        assert any("exceeds" in p for p in problems)
        # fast enough runs pass the gate too
        assert check_bench.check(self.good_report(), self.BASELINE,
                                 max_slowdown=20) == []

    def test_main_against_committed_baseline_schema(self, tmp_path):
        """The committed baseline must parse and gate a realistic JSON."""
        baseline_path = REPO_ROOT / "benchmarks" / "baseline.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["suites"], "committed baseline must name suites"
        for suite in baseline["suites"]:
            assert suite["match"] and suite["require_extra_info"]

        report = {"benchmarks": [
            _bench(f"benchmarks/{suite['match']}[{index}]",
                   dict.fromkeys(suite["require_extra_info"], 1))
            for suite in baseline["suites"]
            for index in range(suite.get("min_count", 1))
        ]}
        report_path = tmp_path / "bench.json"
        report_path.write_text(json.dumps(report))
        assert check_bench.main(
            [str(report_path), "--baseline", str(baseline_path)]) == 0

    def test_main_fails_on_missing_report(self, tmp_path):
        with pytest.raises(SystemExit):
            check_bench.main([str(tmp_path / "absent.json")])

    # -- missing-suite detection (distinct exit code) -----------------------

    def test_missing_suites_lists_unmatched_baseline_entries(self):
        report = self.good_report()
        report["benchmarks"] = report["benchmarks"][:2]  # drop test_matrix
        assert check_bench.missing_suites(report, self.BASELINE) == \
            ["test_matrix"]
        assert check_bench.missing_suites(self.good_report(),
                                          self.BASELINE) == []

    def test_undermatched_suite_is_not_missing(self):
        """A suite matching fewer than min_count benchmarks is a regular
        check() problem, not a structural mismatch."""
        report = self.good_report()
        del report["benchmarks"][1]  # one test_transport left (min_count=2)
        assert check_bench.missing_suites(report, self.BASELINE) == []
        assert any("expected >= 2" in p
                   for p in check_bench.check(report, self.BASELINE))

    def test_main_missing_suite_exit_code_and_message(self, tmp_path, capsys):
        report = self.good_report()
        report["benchmarks"] = report["benchmarks"][:2]
        report_path = tmp_path / "bench.json"
        report_path.write_text(json.dumps(report))
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(self.BASELINE))
        code = check_bench.main(
            [str(report_path), "--baseline", str(baseline_path)])
        assert code == check_bench.MISSING_SUITE_EXIT == 3
        out = capsys.readouterr().out.strip()
        assert out.count("\n") == 0, "missing-suite report is one line"
        assert "test_matrix" in out and "missing" in out

    def test_main_zero_benchmarks_still_generic_failure(self, tmp_path):
        """An empty report is a collection error (exit 1), not a
        missing-suite mismatch (exit 3)."""
        report_path = tmp_path / "bench.json"
        report_path.write_text(json.dumps({"benchmarks": []}))
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(self.BASELINE))
        assert check_bench.main(
            [str(report_path), "--baseline", str(baseline_path)]) == 1

"""Checkpoint/restart for Iteration mode: a killed superstep resumes from
the last completed iteration, under both the thread and shm transports.

The iteration checkpoint is written by the root after each *completed*
superstep (atomically — rename, never a partial file), so a failure in
iteration N leaves the iteration N-1 state on disk and ``resume=True``
replays only iterations N onward, converging to a state byte-identical
to an uninterrupted run.
"""

import pickle

import pytest

from repro.common.errors import CheckpointError, MPIError
from repro.datampi import (
    DataMPIConf,
    IterativeJob,
    read_iteration_state,
    write_iteration_state,
)

TRANSPORTS = ("thread", "shm", "tcp")

SPLITS = [list(range(6)), list(range(6, 12))]


def o_task(ctx, split, state):
    for item in split:
        ctx.send(item % 4, item * state["scale"])


def a_task(ctx, _state):
    return [(key, sum(values)) for key, values in ctx.grouped()]


def update(state, merged, iteration):
    totals = dict(state["totals"])
    for key, value in merged:
        totals[key] = totals.get(key, 0) + value
    new_state = {"scale": state["scale"] + 1, "totals": totals}
    return new_state, iteration >= 4


def make_job(checkpoint_dir, transport, kill_at=None):
    def maybe_killed_o(ctx, split, state):
        if kill_at is not None and state["scale"] == kill_at:
            raise RuntimeError(f"superstep killed at scale {kill_at}")
        o_task(ctx, split, state)

    return IterativeJob(
        maybe_killed_o, a_task, update,
        DataMPIConf(num_o=2, num_a=2, mode="iteration",
                    checkpoint_dir=checkpoint_dir, transport=transport),
        max_iterations=6,
    )


INITIAL = {"scale": 1, "totals": {}}


class TestKilledSuperstepResume:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_resume_from_last_completed_iteration(self, tmp_path, transport):
        directory = str(tmp_path / "ckpt")
        uninterrupted = make_job(str(tmp_path / "ref"), transport).run(
            SPLITS, INITIAL
        )
        assert uninterrupted.iterations == 4 and uninterrupted.converged

        # Iteration 3 (scale 3) dies on every O rank: supersteps 1-2 complete.
        killed = make_job(directory, transport, kill_at=3)
        with pytest.raises(MPIError, match="superstep killed at scale 3"):
            killed.run(SPLITS, INITIAL)
        saved = read_iteration_state(directory)
        assert saved is not None and saved["iteration"] == 2
        assert saved["state"]["scale"] == 3

        resumed = make_job(directory, transport).run(
            SPLITS, INITIAL, resume=True
        )
        assert resumed.start_iteration == 2
        assert resumed.iterations == 4 and resumed.converged
        # Only iterations 3 and 4 re-ran.
        assert len(resumed.per_iteration) == 2
        assert [r["superstep"] for r in resumed.per_iteration] == [3, 4]
        assert pickle.dumps(resumed.state) == pickle.dumps(uninterrupted.state)
        assert pickle.dumps(resumed.outputs) == pickle.dumps(uninterrupted.outputs)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_kill_in_first_iteration_leaves_no_checkpoint(self, tmp_path, transport):
        directory = str(tmp_path / "ckpt")
        job = make_job(directory, transport, kill_at=1)
        with pytest.raises(MPIError, match="superstep killed"):
            job.run(SPLITS, INITIAL)
        assert read_iteration_state(directory) is None
        with pytest.raises(CheckpointError, match="no iteration checkpoint"):
            make_job(directory, transport).run(SPLITS, INITIAL, resume=True)

    def test_common_mode_checkpoints_and_resumes_too(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        job = IterativeJob(
            o_task, a_task, update,
            DataMPIConf(num_o=2, num_a=2, mode="common",
                        checkpoint_dir=directory),
            max_iterations=6,
        )
        full = job.run(SPLITS, INITIAL)
        assert read_iteration_state(directory)["iteration"] == full.iterations
        resumed = job.run(SPLITS, INITIAL, resume=True)
        # The resumed run picks up after the last completed iteration: one
        # more superstep runs and its update converges immediately.
        assert resumed.start_iteration == full.iterations
        assert resumed.iterations == full.iterations + 1
        assert resumed.converged


class TestIterationStateFile:
    def test_round_trip(self, tmp_path):
        write_iteration_state(str(tmp_path), 3, {"x": [1.5, None, ("a", 2)]})
        saved = read_iteration_state(str(tmp_path))
        assert saved == {"iteration": 3, "state": {"x": [1.5, None, ("a", 2)]}}

    def test_rewrite_is_atomic_overwrite(self, tmp_path):
        write_iteration_state(str(tmp_path), 1, "first")
        write_iteration_state(str(tmp_path), 2, "second")
        assert read_iteration_state(str(tmp_path)) == {
            "iteration": 2, "state": "second",
        }
        assert not list(tmp_path.glob("*.tmp"))

    def test_bad_magic_rejected(self, tmp_path):
        write_iteration_state(str(tmp_path), 1, "ok")
        path = tmp_path / "iteration-state.ckpt"
        path.write_bytes(b"GARBAGE!" + path.read_bytes()[8:])
        with pytest.raises(CheckpointError, match="magic"):
            read_iteration_state(str(tmp_path))

    def test_truncated_payload_rejected(self, tmp_path):
        write_iteration_state(str(tmp_path), 1, {"big": list(range(50))})
        path = tmp_path / "iteration-state.ckpt"
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(CheckpointError, match="unreadable"):
            read_iteration_state(str(tmp_path))

    def test_bad_iteration_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="iteration"):
            write_iteration_state(str(tmp_path), 0, "state")

"""Temporal shapes of the Figure 4 time series.

Beyond the averages, the paper's Figure 4 plots have characteristic
*shapes* that encode the frameworks' execution structure.  These tests
pin the ones the paper's analysis leans on.
"""

import pytest

from repro.common.units import GB
from repro.perfmodels import simulate_once


@pytest.fixture(scope="module")
def sort_outcomes():
    return {
        fw: simulate_once(fw, "text_sort", 8 * GB)
        for fw in ("hadoop", "spark", "datampi")
    }


class TestSortNetworkShape:
    def test_datampi_shuffles_during_o_phase_hadoop_does_not(self, sort_outcomes):
        """Pipelining: DataMPI's shuffle traffic flows *while O tasks run*
        ("the communication caused by data movement from O communicator to
        A communicator mainly happens in DataMPI O phase"), whereas
        Hadoop's map phase is network-silent (local reads, local spills)."""
        datampi = sort_outcomes["datampi"]
        t0, t1 = datampi.phases["o"]
        datampi_o_rate = datampi.cluster.network_mbps(t0, t1)

        hadoop = sort_outcomes["hadoop"]
        m0, m1 = hadoop.phases["map"]
        hadoop_map_rate = hadoop.cluster.network_mbps(m0, m1)

        assert datampi_o_rate > 30.0      # the pipelined shuffle is visible
        assert hadoop_map_rate < 5.0      # nothing moves until reducers fetch
        assert datampi_o_rate > 10 * max(hadoop_map_rate, 0.1)

    def test_hadoop_network_peaks_after_map_phase(self, sort_outcomes):
        """Hadoop's shuffle starts only when reducers fetch map output."""
        outcome = sort_outcomes["hadoop"]
        cluster = outcome.cluster
        map_t0, map_t1 = outcome.phases["map"]
        t_end = outcome.result.elapsed_sec
        map_rate = cluster.network_mbps(map_t0, map_t1)
        reduce_rate = cluster.network_mbps(map_t1, t_end)
        assert reduce_rate > map_rate * 2.0

    def test_datampi_finishes_while_others_still_run(self, sort_outcomes):
        """At DataMPI's finish time, Hadoop and Spark are mid-job — the
        visual takeaway of every Figure 4 panel."""
        d_end = sort_outcomes["datampi"].result.elapsed_sec
        for other in ("hadoop", "spark"):
            assert sort_outcomes[other].result.elapsed_sec > d_end * 1.3


class TestSortDiskShape:
    def test_reads_concentrate_in_load_phase(self, sort_outcomes):
        """Input reads happen in the O/Map phase; later phases are
        write-dominated (the sort's output)."""
        for framework, phase in (("datampi", "o"), ("hadoop", "map")):
            outcome = sort_outcomes[framework]
            cluster = outcome.cluster
            t0, t1 = outcome.phases[phase]
            t_end = outcome.result.elapsed_sec
            load_read = cluster.disk_read_mbps(t0, t1)
            tail_read = cluster.disk_read_mbps(t1, t_end)
            assert load_read > tail_read, framework

    def test_writes_concentrate_in_output_phase(self, sort_outcomes):
        outcome = sort_outcomes["datampi"]
        cluster = outcome.cluster
        t0, t1 = outcome.phases["o"]
        t_end = outcome.result.elapsed_sec
        assert cluster.disk_write_mbps(t1, t_end) > cluster.disk_write_mbps(t0, t1)


class TestSortMemoryShape:
    def test_datampi_memory_steps_up_after_o_phase(self, sort_outcomes):
        """The buffered intermediate data appears as a step in the memory
        footprint when the O phase completes."""
        outcome = sort_outcomes["datampi"]
        cluster = outcome.cluster
        t0, t1 = outcome.phases["o"]
        mid_o = cluster.memory_gb(t0 + 1, t1 - 1)
        a0, a1 = outcome.phases["a"]
        mid_a = cluster.memory_gb(a0 + 1, a1 - 1)
        assert mid_a > mid_o + 0.5  # the ~1GB/node buffered shuffle

    def test_memory_returns_toward_baseline_at_end(self, sort_outcomes):
        """After the job, only the framework daemons' memory remains
        (sampled just past the final free at job end)."""
        for framework, outcome in sort_outcomes.items():
            cluster = outcome.cluster
            t_end = outcome.result.elapsed_sec
            after = cluster.memory_gb(t_end + 0.1, t_end + 0.2)
            assert after < 2.0, framework


class TestWordCountShape:
    def test_hadoop_cpu_saturated_through_map_waves(self):
        """Hadoop WordCount holds high CPU through its four map waves."""
        outcome = simulate_once("hadoop", "wordcount", 32 * GB)
        cluster = outcome.cluster
        t0, t1 = outcome.phases["map"]
        quarters = [
            cluster.cpu_utilization_pct(
                t0 + i * (t1 - t0) / 4, t0 + (i + 1) * (t1 - t0) / 4
            )
            for i in range(4)
        ]
        assert all(q > 55.0 for q in quarters), quarters

"""Concurrency stress tests for the MPI substrate.

N senders x M receivers with randomized tags, asserting MPI's
non-overtaking guarantee: for each (source, destination) pair, messages
are delivered in send order — both for wildcard receives and for
tag-selective receives (where the matched subsequence must preserve
per-tag send order).  Also pins down the liveness contract: a receive
that can never be satisfied surfaces :class:`MPIError` after its timeout
instead of hanging the world.
"""

import random

import pytest

from repro.common.errors import MPIError
from repro.mpi import mpi_run
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, RECV_TIMEOUT

NUM_SENDERS = 4
NUM_RECEIVERS = 3
MESSAGES_PER_PAIR = 120

# Named test tags (RPL003: no literal ints at send/recv call sites).
TAG_NEVER_SENT = 7
TAG_NOISE = 1
TAG_OTHER = 2


def _stress_main(comm, seed):
    """Ranks [0, NUM_SENDERS) send; the rest receive and audit ordering."""
    world = NUM_SENDERS + NUM_RECEIVERS
    assert comm.size == world
    if comm.rank < NUM_SENDERS:
        rng = random.Random(seed * 1000 + comm.rank)
        sequences = [0] * NUM_RECEIVERS
        while any(n < MESSAGES_PER_PAIR for n in sequences):
            candidates = [i for i, n in enumerate(sequences) if n < MESSAGES_PER_PAIR]
            receiver = rng.choice(candidates)
            tag = rng.randint(0, 3)
            comm.send(
                NUM_SENDERS + receiver,
                (comm.rank, sequences[receiver], tag),
                tag=tag,
            )
            sequences[receiver] += 1
        return None

    observed: dict[int, list[int]] = {s: [] for s in range(NUM_SENDERS)}
    tag_observed: dict[tuple[int, int], list[int]] = {}
    for _ in range(NUM_SENDERS * MESSAGES_PER_PAIR):
        message = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, timeout=60.0)
        source, sequence, tag = message.payload
        assert source == message.source
        assert tag == message.tag
        observed[source].append(sequence)
        tag_observed.setdefault((source, tag), []).append(sequence)
    return observed, tag_observed


@pytest.mark.parametrize("transport", ["thread", "shm", "inline", "tcp"])
def test_non_overtaking_under_stress(transport):
    results = mpi_run(
        NUM_SENDERS + NUM_RECEIVERS, _stress_main, args=(1234,), transport=transport
    )
    for receiver in range(NUM_SENDERS, NUM_SENDERS + NUM_RECEIVERS):
        observed, tag_observed = results[receiver]
        for source, sequences in observed.items():
            # Per (source, dest) wildcard receive sees exact send order.
            assert sequences == list(range(MESSAGES_PER_PAIR)), (
                f"receiver {receiver} saw source {source} out of order"
            )
        for (_source, _tag), sequences in tag_observed.items():
            # The per-tag subsequence preserves send order too.
            assert sequences == sorted(sequences)


@pytest.mark.parametrize("transport", ["thread", "shm", "tcp"])
def test_selective_recv_by_tag_under_stress(transport):
    """Receivers drain tag-by-tag; selective matching must never lose or
    reorder messages within one (source, tag) stream."""
    num_tags = 3
    per_tag = 40

    def main(comm):
        if comm.rank == 0:
            rng = random.Random(99)
            pending = {tag: 0 for tag in range(num_tags)}
            while any(n < per_tag for n in pending.values()):
                tag = rng.choice([t for t, n in pending.items() if n < per_tag])
                comm.send(1, (tag, pending[tag]), tag=tag)
                pending[tag] += 1
            return None
        streams = {}
        for tag in range(num_tags):  # drain one whole tag before the next
            streams[tag] = [
                comm.recv(source=0, tag=tag, timeout=30.0).payload
                for _ in range(per_tag)
            ]
        return streams

    streams = mpi_run(2, main, transport=transport)[1]
    for tag in range(num_tags):
        assert streams[tag] == [(tag, n) for n in range(per_tag)]


class TestRecvTimeout:
    def test_default_timeout_is_recv_timeout(self):
        assert RECV_TIMEOUT == 120.0

    @pytest.mark.parametrize("transport", ["thread", "shm", "tcp"])
    def test_blocked_recv_raises_instead_of_hanging(self, transport):
        def main(comm):
            if comm.rank == 1:
                # Nobody ever sends TAG_NEVER_SENT: must raise, not hang.
                comm.recv(source=0, tag=TAG_NEVER_SENT, timeout=0.3)
            return None

        with pytest.raises(MPIError, match="timed out|rank 1"):
            mpi_run(2, main, transport=transport)

    def test_blocked_recv_message_names_source_and_tag(self):
        def main(comm):
            comm.recv(source=0, tag=TAG_NEVER_SENT, timeout=0.05)

        with pytest.raises(MPIError, match=r"source=0 tag=7"):
            mpi_run(1, main, transport="thread")

    def test_mismatched_messages_do_not_satisfy_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, "noise", tag=TAG_NOISE)
                return None
            with pytest.raises(MPIError, match="timed out"):
                comm.recv(source=0, tag=TAG_OTHER, timeout=0.2)
            # The mismatched message is still there for a matching receive.
            return comm.recv(source=0, tag=TAG_NOISE, timeout=5.0).payload

        assert mpi_run(2, main, transport="thread")[1] == "noise"

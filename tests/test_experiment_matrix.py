"""Experiment matrix: spec validation, runner checkpointing, resume-after-kill."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments.matrix import (
    CellResult,
    MatrixRunner,
    checkpoint_status,
    execute_cell,
    load_matrix,
    verify_cross_engine,
)
from repro.experiments.spec import (
    CellSpec,
    ExperimentSpec,
    full_spec,
    get_spec,
    quick_spec,
)


def tiny_spec(cells=None, **kwargs) -> ExperimentSpec:
    cells = cells or (
        CellSpec("wordcount", "common", "datampi", "tiny", "inline"),
        CellSpec("wordcount", "common", "hadoop-model", "tiny"),
        CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
        CellSpec("kmeans", "iteration", "hadoop-model", "tiny"),
    )
    kwargs.setdefault("max_iterations", 3)
    return ExperimentSpec("tiny", tuple(cells), **kwargs)


class TestCellSpec:
    def test_cell_id_includes_transport_only_for_datampi(self):
        datampi = CellSpec("wordcount", "common", "datampi", "tiny", "inline")
        model = CellSpec("wordcount", "common", "hadoop-model", "tiny")
        assert datampi.cell_id == "wordcount.common.datampi.tiny.inline"
        assert model.cell_id == "wordcount.common.hadoop-model.tiny"

    def test_rejects_unknown_axes(self):
        with pytest.raises(ConfigError):
            CellSpec("join", "common", "datampi", "tiny")
        with pytest.raises(ConfigError):
            CellSpec("wordcount", "common", "flink", "tiny")
        with pytest.raises(ConfigError):
            CellSpec("wordcount", "common", "datampi", "huge")
        with pytest.raises(ConfigError):
            CellSpec("wordcount", "common", "datampi", "tiny", "carrier-pigeon")

    def test_rejects_unsupported_modes(self):
        with pytest.raises(ConfigError):
            CellSpec("text_sort", "streaming", "datampi", "tiny")
        with pytest.raises(ConfigError):
            CellSpec("kmeans", "streaming", "datampi", "tiny")
        with pytest.raises(ConfigError):
            CellSpec("wordcount", "streaming", "hadoop-model", "tiny")

    def test_model_engines_have_no_transport(self):
        with pytest.raises(ConfigError):
            CellSpec("wordcount", "common", "spark-model", "tiny", "inline")

    def test_round_trips_through_dict(self):
        cell = CellSpec("kmeans", "iteration", "datampi", "small", "inline")
        assert CellSpec.from_dict(cell.to_dict()) == cell


class TestExperimentSpec:
    def test_matrix_filters_invalid_combinations(self):
        spec = ExperimentSpec.matrix(
            "m", workloads=("wordcount", "text_sort"),
            engines=("datampi", "spark-model"),
            modes=("common", "streaming"), scales=("tiny",),
        )
        ids = {cell.cell_id for cell in spec.cells}
        assert "wordcount.streaming.datampi.tiny.inline" in ids
        # streaming never runs on a model engine, text_sort never streams
        assert not any("streaming.spark-model" in i for i in ids)
        assert not any(i.startswith("text_sort.streaming") for i in ids)

    def test_duplicate_cells_rejected(self):
        cell = CellSpec("wordcount", "common", "datampi", "tiny")
        with pytest.raises(ConfigError):
            ExperimentSpec("dupes", (cell, cell))

    def test_round_trips_through_dict(self):
        spec = quick_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_dict(spec.to_dict()).spec_hash == spec.spec_hash

    def test_spec_hash_tracks_content(self):
        assert quick_spec().spec_hash != tiny_spec().spec_hash

    def test_quick_spec_meets_acceptance_floor(self):
        spec = quick_spec()
        workloads = {c.workload for c in spec.cells}
        engines = {c.engine for c in spec.cells}
        scales = {c.scale for c in spec.cells}
        assert len(workloads) >= 2 and len(engines) >= 2 and len(scales) >= 2
        assert spec.iterative_cells()

    def test_full_spec_covers_every_workload_and_engine(self):
        spec = full_spec()
        assert {c.workload for c in spec.cells} == \
            {"wordcount", "grep", "text_sort", "normal_sort", "kmeans",
             "naive_bayes"}
        assert {c.engine for c in spec.cells} == \
            {"datampi", "hadoop-model", "spark-model"}
        assert {c.scale for c in spec.cells} == \
            {"tiny", "small", "medium", "large"}

    def test_spark_model_never_gets_naive_bayes_cells(self):
        """The paper's BigDataBench release lacks Spark Naive Bayes."""
        spec = full_spec()
        assert not any(
            c.workload == "naive_bayes" and c.engine == "spark-model"
            for c in spec.cells
        )
        with pytest.raises(ConfigError):
            CellSpec("naive_bayes", "common", "spark-model", "tiny")

    def test_get_spec_rejects_unknown_preset(self):
        with pytest.raises(ConfigError):
            get_spec("nightly")


class TestExecuteCell:
    """Direct cell execution (no profiling/model) on the inline transport."""

    def test_counting_cells_agree_across_engines(self):
        spec = tiny_spec()
        checksums = {
            engine: execute_cell(
                CellSpec("grep", "common", engine, "tiny",
                         "inline" if engine == "datampi" else None),
                spec,
            ).output_checksum
            for engine in ("datampi", "hadoop-model", "spark-model")
        }
        assert len(set(checksums.values())) == 1

    def test_streaming_reproduces_batch_checksum(self):
        spec = tiny_spec()
        batch = execute_cell(
            CellSpec("wordcount", "common", "datampi", "tiny", "inline"), spec)
        stream = execute_cell(
            CellSpec("wordcount", "streaming", "datampi", "tiny", "inline"), spec)
        assert stream.output_checksum == batch.output_checksum
        assert stream.iterations and stream.iterations > 1

    def test_text_sort_cells_agree(self):
        spec = tiny_spec()
        a = execute_cell(
            CellSpec("text_sort", "common", "datampi", "tiny", "inline"), spec)
        b = execute_cell(
            CellSpec("text_sort", "common", "hadoop-model", "tiny"), spec)
        assert a.output_checksum == b.output_checksum
        assert a.bytes_moved and b.bytes_moved

    def test_model_engine_replay_is_pinned_to_inline(self, monkeypatch):
        """The hadoop-model replay must not follow REPRO_TRANSPORT."""
        monkeypatch.setenv("REPRO_TRANSPORT", "carrier-pigeon")
        result = execute_cell(
            CellSpec("kmeans", "iteration", "hadoop-model", "tiny"), tiny_spec())
        assert result.per_iteration_bytes

    def test_spark_cells_report_shuffle_bytes(self):
        """The instrumented SparkContext populates bytes_moved, so the
        bytes_ratio_vs_spark_model report column stops reporting '-'."""
        spec = tiny_spec()
        for workload, mode in (("wordcount", "common"), ("grep", "common"),
                               ("text_sort", "common"), ("kmeans", "common"),
                               ("normal_sort", "common")):
            result = execute_cell(
                CellSpec(workload, mode, "spark-model", "tiny"), spec)
            assert result.bytes_moved and result.bytes_moved > 0, workload
            assert result.counters["shuffles"] >= 1

    def test_naive_bayes_cells_agree_across_engines(self):
        spec = tiny_spec()
        checksums = set()
        for engine, mode in (("datampi", "common"), ("hadoop-model", "common"),
                             ("datampi", "iteration"),
                             ("hadoop-model", "iteration")):
            result = execute_cell(
                CellSpec("naive_bayes", mode, engine, "tiny",
                         "inline" if engine == "datampi" else None),
                spec,
            )
            assert result.bytes_moved and result.bytes_moved > 0
            checksums.add(result.output_checksum)
        assert len(checksums) == 1

    def test_naive_bayes_iteration_caches_like_kmeans(self):
        """Warm passes of the kept-alive pipeline move fewer bytes than
        the one-job-per-pass replay; the first pass costs the same."""
        spec = tiny_spec()
        datampi = execute_cell(
            CellSpec("naive_bayes", "iteration", "datampi", "tiny", "inline"),
            spec)
        hadoop = execute_cell(
            CellSpec("naive_bayes", "iteration", "hadoop-model", "tiny"), spec)
        assert datampi.iterations == hadoop.iterations == 3
        assert datampi.per_iteration_bytes[0] == hadoop.per_iteration_bytes[0]
        for warm_datampi, warm_hadoop in zip(datampi.per_iteration_bytes[1:],
                                             hadoop.per_iteration_bytes[1:]):
            assert warm_datampi < warm_hadoop
        assert datampi.bytes_moved < hadoop.bytes_moved

    def test_normal_sort_cells_agree_and_record_compression(self):
        spec = tiny_spec()
        results = {
            engine: execute_cell(
                CellSpec("normal_sort", "common", engine, "tiny",
                         "inline" if engine == "datampi" else None),
                spec,
            )
            for engine in ("datampi", "hadoop-model", "spark-model")
        }
        assert len({r.output_checksum for r in results.values()}) == 1
        for result in results.values():
            ratio = (result.counters["seqfile.raw_bytes"]
                     / result.counters["seqfile.compressed_bytes"])
            assert ratio > 1.0  # real text compresses
            assert result.counters["seqfile.records"] == 240

    def test_normal_sort_output_matches_text_sort_of_same_lines(self):
        """ToSeqFile is lossless: sorting the decompressed records gives
        the same answer as sorting the original text."""
        spec = tiny_spec()
        normal = execute_cell(
            CellSpec("normal_sort", "common", "datampi", "tiny", "inline"),
            spec)
        text = execute_cell(
            CellSpec("text_sort", "common", "datampi", "tiny", "inline"), spec)
        assert normal.output_checksum == text.output_checksum

    def test_iteration_mode_moves_fewer_bytes_than_hadoop_pattern(self):
        spec = tiny_spec()
        datampi = execute_cell(
            CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"), spec)
        hadoop = execute_cell(
            CellSpec("kmeans", "iteration", "hadoop-model", "tiny"), spec)
        assert datampi.output_checksum == hadoop.output_checksum
        assert datampi.iterations == hadoop.iterations
        # iteration 1 pays the same scatter; every warm iteration is cheaper
        assert datampi.per_iteration_bytes[0] == hadoop.per_iteration_bytes[0]
        for warm_datampi, warm_hadoop in zip(datampi.per_iteration_bytes[1:],
                                             hadoop.per_iteration_bytes[1:]):
            assert warm_datampi < warm_hadoop
        assert datampi.bytes_moved < hadoop.bytes_moved


class TestMatrixRunner:
    def test_run_writes_cell_checkpoints_and_manifest(self, tmp_path):
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        result = runner.run()
        assert result.executed == len(spec.cells) and result.resumed == 0
        assert not result.failed_cells()
        for cell in spec.cells:
            assert (tmp_path / "cells" / f"{cell.cell_id}.json").exists()
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "spec.json").exists()

    def test_second_run_resumes_every_cell(self, tmp_path):
        spec = tiny_spec()
        MatrixRunner(spec, str(tmp_path)).run()
        executions = []
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell
        runner.execute_cell = lambda cell: executions.append(cell) or original(cell)
        result = runner.run()
        assert executions == []
        assert result.resumed == len(spec.cells)

    def test_resume_after_kill_skips_finished_cells(self, tmp_path):
        """A run killed mid-matrix resumes from the first unfinished cell."""
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell
        survived = 2

        def dying(cell):
            if len(executed_first) >= survived:
                raise KeyboardInterrupt  # the kill: not recorded as 'failed'
            executed_first.append(cell.cell_id)
            return original(cell)

        executed_first: list = []
        runner.execute_cell = dying
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        assert len(executed_first) == survived
        assert not (tmp_path / "manifest.json").exists()

        resumed_runner = MatrixRunner(spec, str(tmp_path))
        executed_second: list = []
        original_resumed = resumed_runner.execute_cell
        resumed_runner.execute_cell = \
            lambda cell: executed_second.append(cell.cell_id) or \
            original_resumed(cell)
        result = resumed_runner.run()
        assert executed_second == \
            [cell.cell_id for cell in spec.cells[survived:]]
        assert result.resumed == survived
        assert result.executed == len(spec.cells) - survived
        assert not result.failed_cells()
        assert (tmp_path / "manifest.json").exists()

    def test_spec_change_invalidates_checkpoints(self, tmp_path):
        MatrixRunner(tiny_spec(), str(tmp_path)).run()
        changed = tiny_spec(seed=8)
        result = MatrixRunner(changed, str(tmp_path)).run()
        assert result.resumed == 0
        assert result.executed == len(changed.cells)

    def test_failed_cell_is_recorded_and_retried(self, tmp_path):
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell

        def flaky(cell):
            if cell.cell_id == spec.cells[1].cell_id:
                raise RuntimeError("simulated workload failure")
            return original(cell)

        runner.execute_cell = flaky
        result = runner.run()
        assert [c.spec.cell_id for c in result.failed_cells()] == \
            [spec.cells[1].cell_id]
        assert "simulated workload failure" in result.failed_cells()[0].error

        retry = MatrixRunner(spec, str(tmp_path)).run()
        assert not retry.failed_cells()
        assert retry.executed == 1 and retry.resumed == len(spec.cells) - 1

    def test_no_resume_reexecutes_everything(self, tmp_path):
        spec = tiny_spec()
        MatrixRunner(spec, str(tmp_path)).run()
        result = MatrixRunner(spec, str(tmp_path)).run(resume=False)
        assert result.executed == len(spec.cells) and result.resumed == 0

    def test_load_matrix_round_trips(self, tmp_path):
        spec = tiny_spec()
        ran = MatrixRunner(spec, str(tmp_path)).run()
        loaded = load_matrix(str(tmp_path))
        assert loaded.spec == spec
        assert loaded.by_cell_id().keys() == ran.by_cell_id().keys()
        for cell_id, result in loaded.by_cell_id().items():
            assert result.bytes_moved == ran.by_cell_id()[cell_id].bytes_moved

    def test_load_matrix_without_cells_raises(self, tmp_path):
        with pytest.raises(Exception):
            load_matrix(str(tmp_path / "nowhere"))

    def test_verify_cross_engine_flags_divergence(self, tmp_path):
        spec = tiny_spec()
        result = MatrixRunner(spec, str(tmp_path)).run()
        assert all(verify_cross_engine(result).values())
        # corrupt one checksum: the comparison must catch it
        result.results[0].output_checksum = "deadbeef"
        agreement = verify_cross_engine(result)
        key = "wordcount.common.tiny"
        assert agreement[key] is False

    def test_verify_cross_engine_drops_single_engine_groups(self, tmp_path):
        """One digest compared against nothing is not a verification."""
        spec = tiny_spec()
        result = MatrixRunner(spec, str(tmp_path)).run()
        # drop the hadoop-model wordcount cell: its group loses its partner
        result.results = [
            r for r in result.results
            if r.spec.cell_id != "wordcount.common.hadoop-model.tiny"
        ]
        agreement = verify_cross_engine(result)
        assert "wordcount.common.tiny" not in agreement
        assert agreement  # the kmeans groups still compare two engines

    def test_load_matrix_flags_partial_runs_incomplete(self, tmp_path):
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell

        def dying(cell):
            if cell.cell_id == spec.cells[-1].cell_id:
                raise KeyboardInterrupt
            return original(cell)

        runner.execute_cell = dying
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        partial = load_matrix(str(tmp_path))
        assert partial.complete is False
        assert len(partial.results) == len(spec.cells) - 1

        MatrixRunner(spec, str(tmp_path)).run()
        assert load_matrix(str(tmp_path)).complete is True


class TestCheckpointStatus:
    def test_fresh_directory_is_all_pending(self, tmp_path):
        spec = tiny_spec()
        status = checkpoint_status(spec, str(tmp_path))
        assert set(status) == {c.cell_id for c in spec.cells}
        assert set(status.values()) == {"pending"}

    def test_completed_run_is_all_done(self, tmp_path):
        spec = tiny_spec()
        MatrixRunner(spec, str(tmp_path)).run()
        assert set(checkpoint_status(spec, str(tmp_path)).values()) == {"done"}

    def test_spec_edit_marks_cells_stale(self, tmp_path):
        MatrixRunner(tiny_spec(), str(tmp_path)).run()
        changed = tiny_spec(seed=8)
        assert set(checkpoint_status(changed, str(tmp_path)).values()) == \
            {"stale"}

    def test_failed_cell_reported_failed(self, tmp_path):
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell

        def flaky(cell):
            if cell.cell_id == spec.cells[1].cell_id:
                raise RuntimeError("boom")
            return original(cell)

        runner.execute_cell = flaky
        runner.run()
        status = checkpoint_status(spec, str(tmp_path))
        assert status[spec.cells[1].cell_id] == "failed"
        assert all(state == "done" for cell_id, state in status.items()
                   if cell_id != spec.cells[1].cell_id)

    def test_killed_run_mixes_done_and_pending(self, tmp_path):
        spec = tiny_spec()
        runner = MatrixRunner(spec, str(tmp_path))
        original = runner.execute_cell
        executed: list = []

        def dying(cell):
            if len(executed) >= 2:
                raise KeyboardInterrupt
            executed.append(cell.cell_id)
            return original(cell)

        runner.execute_cell = dying
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        status = checkpoint_status(spec, str(tmp_path))
        assert sorted(s for s in status.values()) == \
            sorted(["done", "done"] + ["pending"] * (len(spec.cells) - 2))

    def test_damaged_checkpoint_is_stale(self, tmp_path):
        spec = tiny_spec()
        MatrixRunner(spec, str(tmp_path)).run()
        victim = tmp_path / "cells" / f"{spec.cells[0].cell_id}.json"
        victim.write_text("{ not json")
        status = checkpoint_status(spec, str(tmp_path))
        assert status[spec.cells[0].cell_id] == "stale"


class TestCellResult:
    def test_round_trips_through_dict(self):
        result = CellResult(
            spec=CellSpec("kmeans", "iteration", "datampi", "tiny", "inline"),
            elapsed_sec=0.5, modeled_sec=12.0, bytes_moved=100,
            per_iteration_bytes=[60, 40], iterations=2,
            output_checksum="abc", counters={"mode.bytes_moved": 100},
            resource={"cpu_util_pct": 50.0},
        )
        assert CellResult.from_dict(result.to_dict()).to_dict() == result.to_dict()

"""Hypothesis property tests for partitioning and the O-side send buffer.

Invariants under test:

* every key lands on exactly one A rank, always inside ``[0, num_a)``,
  and deterministically (same key, same destination);
* the range partitioner's destinations are monotone in the key, and the
  partition intervals cover the whole key space;
* ``PartitionedSendBuffer`` delivers every record exactly once to the
  destination it was added for, preserving per-destination FIFO order of
  flushes (chunk N's records were all added before chunk N+1's).
"""

from hypothesis import given, settings, strategies as st

from repro.common.kv import decode_stream
from repro.datampi.buffers import PartitionedSendBuffer
from repro.datampi.partition import (
    RangePartitioner,
    hash_partitioner,
    validate_partition,
)

keys = st.one_of(
    st.text(max_size=24),
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.binary(max_size=24),
    st.tuples(st.text(max_size=8), st.integers(min_value=0, max_value=1000)),
)


class TestHashPartitioner:
    @given(key=keys, num_a=st.integers(min_value=1, max_value=64))
    def test_lands_on_exactly_one_valid_rank(self, key, num_a):
        destination = hash_partitioner(key, num_a)
        assert 0 <= destination < num_a
        assert validate_partition(destination, num_a) == destination

    @given(key=keys, num_a=st.integers(min_value=1, max_value=64))
    def test_deterministic(self, key, num_a):
        assert hash_partitioner(key, num_a) == hash_partitioner(key, num_a)

    @settings(max_examples=25)
    @given(
        keys_list=st.lists(st.text(max_size=12), min_size=1, max_size=200),
        num_a=st.integers(min_value=2, max_value=8),
    )
    def test_partitions_cover_range(self, keys_list, num_a):
        """Each key maps into [0, num_a); the image never escapes it."""
        destinations = {hash_partitioner(key, num_a) for key in keys_list}
        assert destinations <= set(range(num_a))


class TestRangePartitioner:
    @given(
        sample=st.lists(st.integers(min_value=0, max_value=10 ** 6),
                        min_size=1, max_size=100),
        num_a=st.integers(min_value=1, max_value=16),
        key=st.integers(min_value=-10, max_value=10 ** 6 + 10),
    )
    def test_valid_and_deterministic(self, sample, num_a, key):
        partitioner = RangePartitioner(sample, num_a)
        destination = partitioner(key, num_a)
        assert 0 <= destination < num_a
        assert partitioner(key, num_a) == destination

    @given(
        sample=st.lists(st.integers(min_value=0, max_value=1000),
                        min_size=2, max_size=50),
        num_a=st.integers(min_value=2, max_value=8),
        a=st.integers(min_value=-5, max_value=1005),
        b=st.integers(min_value=-5, max_value=1005),
    )
    def test_monotone_in_key(self, sample, num_a, a, b):
        """key order implies destination order — the property that makes
        concatenating A outputs in rank order a total sort."""
        partitioner = RangePartitioner(sample, num_a)
        low, high = min(a, b), max(a, b)
        assert partitioner(low, num_a) <= partitioner(high, num_a)


# Records: (destination-selector key, value); destination = hash of key.
records_strategy = st.lists(
    st.tuples(st.text(max_size=12), st.integers(min_value=0, max_value=100)),
    max_size=300,
)


class TestPartitionedSendBuffer:
    @settings(max_examples=40)
    @given(
        records=records_strategy,
        num_destinations=st.integers(min_value=1, max_value=6),
        threshold=st.integers(min_value=1, max_value=512),
    )
    def test_exactly_once_delivery_and_fifo(self, records, num_destinations, threshold):
        sent: dict[int, list[bytes]] = {d: [] for d in range(num_destinations)}

        buffer = PartitionedSendBuffer(
            num_destinations,
            lambda dest, payload: sent[dest].append(payload),
            sort=False,
            threshold_bytes=threshold,
        )
        expected: dict[int, list[tuple[str, int]]] = {
            d: [] for d in range(num_destinations)
        }
        for key, value in records:
            destination = hash_partitioner(key, num_destinations)
            buffer.add(destination, key, value)
            expected[destination].append((key, value))
        buffer.flush_all()

        for destination in range(num_destinations):
            delivered = [
                (kv.key, kv.value)
                for chunk in sent[destination]
                for kv in decode_stream(chunk)
            ]
            # Exactly once, and (sort=False) in per-destination FIFO order:
            # concatenating flushed chunks reproduces insertion order.
            assert delivered == expected[destination]

    @settings(max_examples=40)
    @given(
        records=records_strategy,
        num_destinations=st.integers(min_value=1, max_value=6),
        threshold=st.integers(min_value=1, max_value=512),
    )
    def test_sorted_chunks_preserve_multiset(self, records, num_destinations, threshold):
        sent: dict[int, list[bytes]] = {d: [] for d in range(num_destinations)}
        buffer = PartitionedSendBuffer(
            num_destinations,
            lambda dest, payload: sent[dest].append(payload),
            sort=True,
            threshold_bytes=threshold,
        )
        expected: dict[int, list[tuple[str, int]]] = {
            d: [] for d in range(num_destinations)
        }
        for key, value in records:
            destination = hash_partitioner(key, num_destinations)
            buffer.add(destination, key, value)
            expected[destination].append((key, value))
        buffer.flush_all()

        for destination in range(num_destinations):
            chunks = [
                [(kv.key, kv.value) for kv in decode_stream(chunk)]
                for chunk in sent[destination]
            ]
            # Each flushed chunk is internally key-sorted...
            for chunk in chunks:
                assert chunk == sorted(chunk, key=lambda kv: kv[0])
            # ...and nothing is lost or duplicated across chunks.
            delivered = sorted(kv for chunk in chunks for kv in chunk)
            assert delivered == sorted(expected[destination])

    @given(
        records=records_strategy,
        threshold=st.integers(min_value=1, max_value=256),
    )
    def test_counters_consistent(self, records, threshold):
        chunks: list[bytes] = []
        buffer = PartitionedSendBuffer(
            3, lambda dest, payload: chunks.append(payload),
            sort=False, threshold_bytes=threshold,
        )
        for key, value in records:
            buffer.add(hash_partitioner(key, 3), key, value)
        buffer.flush_all()
        assert buffer.records_buffered == len(records)
        assert buffer.records_sent == len(records)
        assert buffer.chunks_sent == len(chunks)
        assert buffer.bytes_sent == sum(len(chunk) for chunk in chunks)
        assert buffer.buffered_bytes == 0

"""Tests for the experiment harness (figures, report, radar)."""

import pytest

from repro import paperdata
from repro.common.units import GB, MB
from repro.experiments import (
    AXES,
    compute_radar,
    fig2a,
    fig2b,
    fig5,
    improvement_range,
    mean_improvement,
    micro_benchmark,
    profile_table,
    render_table,
    resource_profile,
    sweep_table,
    table1,
    table2,
)


class TestTables:
    def test_table1_matches_paper(self):
        rows = table1()
        assert len(rows) == 5
        assert rows[0][1] == "Sort"

    def test_table2_matches_paper(self):
        rows = dict(table2())
        assert rows["CPU type"] == "Intel Xeon E5620"
        assert rows["Memory"] == "16 GB"


class TestFig2a:
    @pytest.fixture(scope="class")
    def data(self):
        return fig2a()

    def test_dimensions(self, data):
        assert set(data) == {5 * GB, 10 * GB, 15 * GB, 20 * GB}
        for by_block in data.values():
            assert set(by_block) == {64 * MB, 128 * MB, 256 * MB, 512 * MB}

    def test_256mb_wins_on_average(self, data):
        means = {}
        for block in (64 * MB, 128 * MB, 256 * MB, 512 * MB):
            means[block] = sum(data[total][block] for total in data) / len(data)
        assert max(means, key=means.get) == paperdata.FIG2A_BEST_BLOCK

    def test_peak_in_paper_range(self, data):
        peak = max(v for by_block in data.values() for v in by_block.values())
        low, high = paperdata.FIG2A_PEAK_THROUGHPUT_RANGE
        assert low <= peak <= high


class TestFig2b:
    @pytest.fixture(scope="class")
    def data(self):
        return fig2b(executions=1)

    def test_four_slots_best_for_every_framework(self, data):
        for framework, by_slots in data.items():
            assert max(by_slots, key=by_slots.get) == paperdata.FIG2B_BEST_SLOTS, framework

    def test_datampi_highest_throughput(self, data):
        assert data["datampi"][4] > data["hadoop"][4]

    def test_spark_did_not_oom_at_small_partitions(self, data):
        assert all(v > 0 for v in data["spark"].values())


class TestSweeps:
    @pytest.fixture(scope="class")
    def grep_series(self):
        return micro_benchmark("grep", executions=1)

    def test_series_shapes(self, grep_series):
        assert set(grep_series) == {"hadoop", "spark", "datampi"}
        for by_size in grep_series.values():
            assert len(by_size) == 4

    def test_improvement_range_helper(self, grep_series):
        low, high = improvement_range(grep_series)
        assert 0.0 < low <= high < 1.0

    def test_mean_improvement_between_bounds(self, grep_series):
        low, high = improvement_range(grep_series)
        assert low <= mean_improvement(grep_series) <= high

    def test_sweep_table_renders(self, grep_series):
        text = sweep_table(grep_series)
        assert "hadoop" in text and "datampi" in text
        assert "8.0GB" in text

    def test_unknown_workload_rejected(self):
        from repro.common.errors import WorkloadError
        with pytest.raises(WorkloadError):
            micro_benchmark("terasort")


class TestFig5:
    @pytest.fixture(scope="class")
    def data(self):
        return fig5(executions=1)

    def test_all_cells_present(self, data):
        assert set(data) == {"text_sort", "wordcount", "grep"}
        for by_framework in data.values():
            assert set(by_framework) == {"hadoop", "spark", "datampi"}

    def test_hadoop_dominated_by_overhead(self, data):
        for workload in data:
            assert data[workload]["hadoop"] > 1.6 * data[workload]["datampi"]

    def test_datampi_similar_to_spark(self, data):
        for workload in data:
            ratio = data[workload]["datampi"] / data[workload]["spark"]
            assert 0.5 < ratio < 1.3

    def test_average_improvement_near_54pct(self, data):
        improvements = [
            1.0 - data[w]["datampi"] / data[w]["hadoop"] for w in data
        ]
        mean = sum(improvements) / len(improvements)
        assert mean == pytest.approx(paperdata.SMALL_JOB_IMPROVEMENT_VS_HADOOP, abs=0.10)


class TestResourceProfileAPI:
    def test_series_sampled_per_second(self):
        profile = resource_profile("text_sort", 8 * GB, "datampi")
        assert set(profile.series) == {
            "cpu_pct", "disk_read_mbps", "disk_write_mbps", "net_in_mbps", "mem_gb",
        }
        times = [t for t, _ in profile.series["cpu_pct"]]
        assert times[0] == pytest.approx(1.0)
        assert abs(len(times) - profile.elapsed_sec) <= 1.0

    def test_profile_table_renders(self):
        from repro.experiments import fig4_sort
        text = profile_table(fig4_sort())
        assert "datampi" in text
        assert "mem GB" in text


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_radar_axes_count(self):
        assert len(AXES) == 7


@pytest.mark.slow
class TestRadar:
    @pytest.fixture(scope="class")
    def radar(self):
        return compute_radar(executions=1)

    def test_datampi_best_or_near_best_everywhere(self, radar):
        # Performance, network and memory axes: DataMPI clearly leads.
        for axis in ("micro_benchmark", "small_job", "application",
                     "network", "memory_efficiency"):
            assert radar.scores[axis]["datampi"] >= 0.95, axis
        # CPU/disk: DataMPI ties Spark within the paper's own spread
        # (Figure 7 shows them overlapping there too).
        for axis in ("cpu_efficiency", "disk_io"):
            assert radar.scores[axis]["datampi"] >= 0.70, axis

    def test_hadoop_worst_on_performance_axes(self, radar):
        for axis in ("micro_benchmark", "small_job", "application"):
            assert radar.scores[axis]["hadoop"] <= radar.scores[axis]["spark"] + 0.05
            assert radar.scores[axis]["hadoop"] < radar.scores[axis]["datampi"]

    def test_headline_improvements(self, radar):
        imp = radar.improvements
        assert imp["micro_vs_hadoop"] == pytest.approx(
            paperdata.MICRO_AVG_IMPROVEMENT["hadoop"], abs=0.08
        )
        assert imp["small_vs_hadoop"] == pytest.approx(
            paperdata.SMALL_JOB_IMPROVEMENT_VS_HADOOP, abs=0.10
        )
        assert imp["app_vs_hadoop"] == pytest.approx(
            paperdata.APP_AVG_IMPROVEMENT["hadoop"], abs=0.08
        )
        assert imp["net_vs_hadoop"] == pytest.approx(
            paperdata.FIG7_NET_IMPROVEMENT["hadoop"], abs=0.30
        )

    def test_cpu_efficiency_aggregate(self, radar):
        """Paper: average CPU 35/34/59 % — DataMPI and Spark similar,
        Hadoop much higher for the same work."""
        imp = radar.improvements
        assert imp["cpu_pct_hadoop"] > 1.4 * imp["cpu_pct_datampi"]
        assert imp["cpu_pct_spark"] == pytest.approx(imp["cpu_pct_datampi"], rel=0.4)

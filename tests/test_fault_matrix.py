"""Chaos matrix: deterministic faults at every instrumented point.

The fault-injection harness (:mod:`repro.mpi.faultinject`) fires *inside*
the rank at named points — no sleeps, polls, or signals from test code —
so every cell of the {action} x {point} x {transport} matrix below is a
reproducible failure, not a race we hope to win:

* ``delay`` is a pure perturbation: every transport must produce output
  byte-identical to an uninjected run.
* ``kill``/``drop`` on the in-process transports (thread, inline) degrade
  to a fail-fast :class:`FaultInjected` abort — the host interpreter
  cannot lose a rank for real.
* ``kill``/``drop`` on shm hard-exit the rank process
  (``os._exit(KILL_EXIT_CODE)``): the world must abort loudly, never hang.
* ``kill``/``drop`` on tcp with a respawn budget exercise elastic
  recovery: the world re-forms, the respawned rank resumes from the last
  iteration checkpoint, and the final result is byte-identical to an
  uninjected run.  (Counters are *not* compared: a replayed superstep
  legitimately moves extra bytes.)
"""

import pickle

import pytest

from repro.common.errors import ConfigError, MPIError
from repro.datampi import DataMPIConf, IterativeJob
from repro.mpi import faultinject
from repro.mpi.faultinject import FaultInjected, FaultPlan, parse_fault_plan
from repro.mpi.transport import get_transport

ACTIONS = ("kill", "drop", "delay")
POINTS = ("rendezvous", "o-phase", "shuffle", "a-phase", "checkpoint-write")
FAIL_FAST = ("thread", "inline", "shm")
ALL_BACKENDS = ("thread", "shm", "inline", "tcp")

SPLITS = [list(range(5)), list(range(5, 10))]  # 10 records per superstep


# Module-level tasks: shm/tcp rank processes must be able to run them.
def counting_o(ctx, split, _state):
    for item in split:
        ctx.send(item % 5, 1)


def counting_a(ctx, _state):
    return [(key, sum(values)) for key, values in ctx.grouped()]


def sum_update(state, merged, _iteration):
    new_state = state + sum(count for _key, count in merged)
    return new_state, new_state >= 30


def make_job(transport, checkpoint_dir=None, fault_plan=None,
             max_iterations=3) -> IterativeJob:
    conf = DataMPIConf(
        num_o=2, num_a=2, mode="iteration", transport=transport,
        checkpoint_dir=checkpoint_dir, fault_plan=fault_plan,
        # Small enough that the shuffle point fires on mid-phase chunks,
        # not only on the final flush.
        send_buffer_bytes=64,
    )
    return IterativeJob(counting_o, counting_a, sum_update, conf,
                        max_iterations=max_iterations)


def plan_for(action: str, point: str) -> str:
    # The checkpoint-write point only fires on the root rank, and a-phase
    # only on A ranks (global ranks 2-3 in this 2x2 world); everything
    # else targets O rank 1 so the root's driver duties stay in the blast
    # radius of *recovery*, not of the injection itself.
    rank = {"checkpoint-write": 0, "a-phase": 2}.get(point, 1)
    clause = f"{action}@{point}:rank={rank}"
    if point != "rendezvous":  # rendezvous fires before supersteps exist
        clause += ":superstep=2"
    if action == "delay":
        clause += ":delay=0.01"
    return clause


@pytest.fixture(scope="module")
def reference():
    """The uninjected answer every surviving run must reproduce."""
    result = make_job("thread").run(SPLITS, 0)
    assert result.state == 30 and result.converged
    return result


def assert_equivalent(result, reference) -> None:
    assert result.state == reference.state
    assert result.iterations == reference.iterations
    assert result.converged == reference.converged
    assert pickle.dumps(result.outputs, protocol=4) == \
        pickle.dumps(reference.outputs, protocol=4)


class TestFaultPlanDSL:
    def test_parse_encode_roundtrip(self):
        text = ("kill@o-phase:rank=1:superstep=2;"
                "delay@shuffle:delay=0.5:count=3;drop@rendezvous")
        plan = FaultPlan.parse(text)
        assert len(plan.rules) == 3
        assert FaultPlan.parse(plan.encode()) == plan

    def test_every_documented_point_parses(self):
        for point in sorted(faultinject.POINTS):
            plan = FaultPlan.parse(f"raise@{point}")
            assert plan.rules[0].point == point

    @pytest.mark.parametrize("bad", [
        "explode@o-phase",            # unknown action
        "kill@warp-core",             # unknown point
        "kill",                       # no @point
        "kill@o-phase:rank=one",      # non-integer value
        "kill@o-phase:color=red",     # unknown key
        "delay@o-phase",              # delay without seconds
        "kill@o-phase:count=0",       # budget must be >= 1
    ])
    def test_bad_clauses_rejected(self, bad):
        with pytest.raises(MPIError):
            FaultPlan.parse(bad)

    def test_parse_fault_plan_coerces(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("  ;; ") is None  # empty clauses, no rules
        plan = parse_fault_plan("raise@o-phase")
        assert parse_fault_plan(plan) is plan

    def test_count_limits_firings_per_process(self):
        faultinject.install("raise@o-phase:count=2")
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faultinject.fire("o-phase", rank=0)
        faultinject.fire("o-phase", rank=0)  # budget spent: no-op

    def test_install_resets_budget(self):
        plan = parse_fault_plan("raise@o-phase")
        for _ in range(2):  # same plan object, fresh budget each install
            faultinject.install(plan)
            with pytest.raises(FaultInjected):
                faultinject.fire("o-phase", rank=0)

    def test_env_var_plan_is_consulted(self, monkeypatch):
        monkeypatch.setenv(faultinject.FAULT_PLAN_ENV,
                           "raise@o-phase:rank=1:superstep=2")
        monkeypatch.setattr(faultinject, "_env_checked", False)
        with pytest.raises(MPIError, match="fault plan"):
            make_job("thread").run(SPLITS, 0)

    def test_conf_plan_with_transport_instance_rejected(self):
        with pytest.raises(ConfigError, match="fault_plan"):
            DataMPIConf(num_o=2, num_a=2,
                        transport=get_transport("thread"),
                        fault_plan="raise@o-phase")


class TestDelayIsHarmless:
    """A slow rank is a perturbation, never a semantics change."""

    @pytest.mark.parametrize("point", POINTS)
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_delayed_run_matches_reference(self, backend, point, tmp_path,
                                           reference):
        job = make_job(backend, checkpoint_dir=str(tmp_path),
                       fault_plan=plan_for("delay", point))
        assert_equivalent(job.run(SPLITS, 0), reference)


class TestFailFastTransports:
    """Without spare hardware there is nothing to recover onto: a lost
    rank must abort the job loudly (and promptly) on every transport."""

    @pytest.mark.parametrize("point", POINTS)
    @pytest.mark.parametrize("action", ("kill", "drop"))
    @pytest.mark.parametrize("backend", FAIL_FAST)
    def test_lost_rank_aborts(self, backend, action, point, tmp_path):
        job = make_job(backend, checkpoint_dir=str(tmp_path),
                       fault_plan=plan_for(action, point))
        with pytest.raises(MPIError) as excinfo:
            job.run(SPLITS, 0)
        if backend in ("thread", "inline"):
            # In-process ranks degrade kill/drop to the injected abort.
            assert "fault plan" in str(excinfo.value)

    def test_tcp_without_respawn_budget_aborts(self, tmp_path):
        transport = get_transport(
            "tcp", fault_plan=plan_for("kill", "o-phase"))
        job = make_job(transport, checkpoint_dir=str(tmp_path))
        with pytest.raises(MPIError):
            job.run(SPLITS, 0)


class TestTcpElasticRecovery:
    """The tentpole: a rank lost mid-run is respawned, rejoins from the
    last iteration checkpoint, and the job's answer does not change."""

    @pytest.mark.parametrize("point", POINTS)
    @pytest.mark.parametrize("action", ("kill", "drop"))
    def test_recovered_run_is_byte_identical(self, action, point, tmp_path,
                                             reference):
        transport = get_transport("tcp", respawns=1,
                                  fault_plan=plan_for(action, point))
        job = make_job(transport, checkpoint_dir=str(tmp_path))
        assert_equivalent(job.run(SPLITS, 0), reference)

    def test_two_deaths_within_budget_recover(self, tmp_path, reference):
        plan = "kill@o-phase:rank=1:superstep=1;kill@a-phase:rank=2:superstep=3"
        transport = get_transport("tcp", respawns=2, fault_plan=plan)
        job = make_job(transport, checkpoint_dir=str(tmp_path))
        assert_equivalent(job.run(SPLITS, 0), reference)

    def test_death_beyond_budget_aborts(self, tmp_path):
        plan = ("kill@o-phase:rank=1:superstep=1;"
                "kill@a-phase:rank=2:superstep=2")
        transport = get_transport("tcp", respawns=1, fault_plan=plan)
        job = make_job(transport, checkpoint_dir=str(tmp_path))
        with pytest.raises(MPIError):
            job.run(SPLITS, 0)

"""Tests for deterministic RNG substreams."""

from repro.common.rng import DEFAULT_SEED, derive_seed, substream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must not collide: separator is encoded.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestSubstream:
    def test_independent_streams_repeat(self):
        first = substream(DEFAULT_SEED, "gen", 0).random()
        again = substream(DEFAULT_SEED, "gen", 0).random()
        assert first == again

    def test_different_streams_differ(self):
        a = [substream(DEFAULT_SEED, "gen", 0).random() for _ in range(3)]
        b = [substream(DEFAULT_SEED, "gen", 1).random() for _ in range(3)]
        assert a != b

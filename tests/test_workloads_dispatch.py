"""Dispatch-level and edge-case tests for the workload layer."""

import pytest

from repro.common import WorkloadError
from repro.workloads import ENGINES, check_engine, split_round_robin
from repro.workloads.sort import _sample_keys


class TestEngineDispatch:
    def test_known_engines(self):
        assert set(ENGINES) == {"hadoop", "spark", "datampi"}
        for engine in ENGINES:
            assert check_engine(engine) == engine

    def test_unknown_engine(self):
        with pytest.raises(WorkloadError):
            check_engine("tez")


class TestSplitRoundRobin:
    def test_balanced(self):
        splits = split_round_robin(list(range(10)), 3)
        assert [len(s) for s in splits] == [4, 3, 3]
        assert sorted(x for s in splits for x in s) == list(range(10))

    def test_more_splits_than_items(self):
        splits = split_round_robin([1], 4)
        assert splits == [[1], [], [], []]

    def test_zero_splits_rejected(self):
        with pytest.raises(WorkloadError):
            split_round_robin([1], 0)


class TestSortSampling:
    def test_small_input_uses_all_keys(self):
        assert sorted(_sample_keys(["b", "a"], sample_size=10)) == ["a", "b"]

    def test_large_input_samples(self):
        lines = [f"line{i:04d}" for i in range(1000)]
        sample = _sample_keys(lines, sample_size=64)
        assert len(sample) == 64
        assert set(sample) <= set(lines)

    def test_deterministic(self):
        lines = [f"x{i}" for i in range(500)]
        assert _sample_keys(lines, seed=3) == _sample_keys(lines, seed=3)

    def test_empty_input_rejected(self):
        with pytest.raises(WorkloadError):
            _sample_keys([])

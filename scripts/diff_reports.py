#!/usr/bin/env python3
"""Diff two rendered report directories, honouring the determinism contract.

The :class:`~repro.experiments.reportbuilder.ReportBuilder` guarantees
that every artifact except the volatile set (``timings.*`` — measured
wall clock and sampled CPU/RSS) is byte-identical between serial and
parallel runs of the same spec.  The CI ``matrix-parallel`` job renders
both and calls this script to enforce it:

    python scripts/diff_reports.py reports-serial reports-parallel

Volatile artifacts are only checked for *presence* (both runs must emit
them); everything else must match byte for byte.  Exit codes: ``0``
identical, ``1`` differences found, ``2`` bad invocation.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

#: Fallback when the repro package is not importable (matches
#: ``repro.experiments.reportbuilder.VOLATILE_ARTIFACTS``).
DEFAULT_VOLATILE = frozenset({"timings.json", "timings.md"})


def volatile_artifacts() -> frozenset[str]:
    """The authoritative volatile set, from the package when available."""
    try:
        from repro.experiments.reportbuilder import VOLATILE_ARTIFACTS
    except ImportError:
        return DEFAULT_VOLATILE
    return frozenset(VOLATILE_ARTIFACTS)


def first_differing_line(left: bytes, right: bytes) -> int:
    """1-based line number of the first difference (for the report)."""
    for number, (a, b) in enumerate(
        zip(left.splitlines(), right.splitlines()), start=1
    ):
        if a != b:
            return number
    return min(len(left.splitlines()), len(right.splitlines())) + 1


def compare_reports(
    left: pathlib.Path,
    right: pathlib.Path,
    volatile: frozenset[str] | None = None,
) -> list[str]:
    """Problems between two report directories; empty means identical."""
    volatile = volatile_artifacts() if volatile is None else volatile
    problems: list[str] = []
    left_names = {p.name for p in left.iterdir() if p.is_file()}
    right_names = {p.name for p in right.iterdir() if p.is_file()}
    for name in sorted(left_names - right_names):
        problems.append(f"{name}: only in {left}")
    for name in sorted(right_names - left_names):
        problems.append(f"{name}: only in {right}")
    for name in sorted(left_names & right_names):
        if name in volatile:
            continue
        a = (left / name).read_bytes()
        b = (right / name).read_bytes()
        if a != b:
            problems.append(
                f"{name}: differs (first difference at line "
                f"{first_differing_line(a, b)})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("left", type=pathlib.Path)
    parser.add_argument("right", type=pathlib.Path)
    parser.add_argument(
        "--include-volatile",
        action="store_true",
        help="also require the volatile artifacts to match "
        "(they never should between independent runs)",
    )
    args = parser.parse_args(argv)
    for directory in (args.left, args.right):
        if not directory.is_dir():
            print(f"not a directory: {directory}", file=sys.stderr)
            return 2
    volatile = frozenset() if args.include_volatile else None
    problems = compare_reports(args.left, args.right, volatile)
    if problems:
        print(f"reports differ ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    skipped = sorted(volatile_artifacts()) if not args.include_volatile else []
    print(
        f"reports identical ({args.left} == {args.right}"
        + (f", volatile skipped: {', '.join(skipped)})" if skipped else ")")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate a pytest-benchmark JSON artifact against a committed baseline.

The trajectory benchmarks publish their measurements through
``--benchmark-json``; downstream tooling diffs the ``extra_info`` blocks
(byte counters, speedups, per-cell results).  A refactor that silently
drops a benchmark, or stops populating an ``extra_info`` key, corrupts
that record long before anyone reads it.  This script fails CI when:

* the JSON is missing or contains **zero benchmarks** (the signature of
  a collection error swallowed by a permissive pytest invocation);
* a suite named in the baseline no longer matches at least
  ``min_count`` benchmarks;
* a matched benchmark is missing one of the suite's required
  ``extra_info`` keys;
* a key listed in the suite's ``require_positive`` is absent, not a
  number, or not > 0 — a throughput of zero means the scenario moved no
  bytes, which is a broken measurement rather than a slow machine.

Timing comparisons are opt-in (``--max-slowdown``) because CI machines
are not comparable to the baseline machine: a suite with a
``median_sec`` in the baseline then also fails when its fastest matched
benchmark is more than ``max-slowdown`` times slower.

Usage:

    python scripts/check_bench_regression.py bench.json \
        --baseline benchmarks/baseline.json [--max-slowdown 20]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Exit code when the baseline names a suite that matches *zero*
#: benchmarks in the report.  Distinct from the generic failure (1) so CI
#: can tell "a benchmark regressed" apart from "the baseline and the
#: report disagree about which suites exist" — the latter usually means a
#: rename or a deleted test, and the fix is editing the baseline, not the
#: code under test.
MISSING_SUITE_EXIT = 3


def load_json(path: pathlib.Path, what: str) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"{what} not found: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{what} is not valid JSON ({path}): {exc}")


def missing_suites(report: dict, baseline: dict) -> list[str]:
    """Baseline suite ``match`` strings that match zero report benchmarks.

    A suite that matches *some* benchmarks but fewer than its
    ``min_count`` is a regular :func:`check` problem; a suite that
    matches none at all is a structural mismatch reported separately
    (see :data:`MISSING_SUITE_EXIT`).
    """
    benchmarks = report.get("benchmarks", [])
    return [
        suite["match"]
        for suite in baseline.get("suites", [])
        if not any(suite["match"] in b.get("fullname", "") for b in benchmarks)
    ]


def check(report: dict, baseline: dict, max_slowdown: float | None = None) -> list[str]:
    """Every violated expectation, as human-readable strings."""
    problems: list[str] = []
    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        return ["benchmark JSON contains zero benchmarks (collection error?)"]
    for suite in baseline.get("suites", []):
        match = suite["match"]
        required = suite.get("require_extra_info", [])
        min_count = suite.get("min_count", 1)
        matched = [b for b in benchmarks if match in b.get("fullname", "")]
        if len(matched) < min_count:
            problems.append(
                f"{match}: expected >= {min_count} benchmark(s), "
                f"found {len(matched)}"
            )
            continue
        positive = suite.get("require_positive", [])
        for bench in matched:
            extra = bench.get("extra_info") or {}
            missing = [key for key in required if key not in extra]
            if missing:
                problems.append(
                    f"{bench['fullname']}: extra_info missing "
                    f"{', '.join(sorted(missing))}"
                )
            for key in positive:
                value = extra.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool) \
                        or value <= 0:
                    problems.append(
                        f"{bench['fullname']}: extra_info[{key!r}] must be "
                        f"a positive number, got {value!r}"
                    )
        baseline_median = suite.get("median_sec")
        if max_slowdown is not None and baseline_median:
            fastest = min(b["stats"]["median"] for b in matched)
            if fastest > baseline_median * max_slowdown:
                problems.append(
                    f"{match}: fastest median {fastest:.6f}s exceeds "
                    f"{max_slowdown}x baseline ({baseline_median:.6f}s)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=pathlib.Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/baseline.json"))
    parser.add_argument("--max-slowdown", type=float, default=None,
                        help="fail suites with a baseline median_sec when "
                             "slower than this factor (off by default: CI "
                             "machines are not the baseline machine)")
    args = parser.parse_args(argv)
    report = load_json(args.report, "benchmark report")
    baseline = load_json(args.baseline, "baseline")
    if report.get("benchmarks"):
        missing = missing_suites(report, baseline)
        if missing:
            print(f"benchmark regression gate: baseline suite(s) missing "
                  f"from report: {', '.join(sorted(missing))}")
            return MISSING_SUITE_EXIT
    problems = check(report, baseline, args.max_slowdown)
    if problems:
        print(f"benchmark regression gate FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    suites = len(baseline.get("suites", []))
    print(f"benchmark regression gate passed: "
          f"{len(report['benchmarks'])} benchmark(s) against {suites} "
          f"baseline suite(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

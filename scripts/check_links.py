#!/usr/bin/env python
"""Offline link check for the repository's markdown docs.

Verifies that every relative link in the given markdown files (or every
``*.md`` under the given directories) points at a file that exists, and
that fragment links (``file.md#heading`` or ``#heading``) resolve to a
real heading using GitHub's anchor slug rules.  External ``http(s)``
and ``mailto`` links are only syntax-checked — CI must not depend on the
network.

Usage::

    python scripts/check_links.py             # README.md + docs/
    python scripts/check_links.py FILE_OR_DIR ...

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")

DEFAULT_TARGETS = ["README.md", "docs"]


def github_slug(heading: str) -> str:
    """GitHub's markdown heading -> anchor id transformation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(targets: list[str]) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md":
            files.append(path)
        else:
            raise SystemExit(f"not a markdown file or directory: {target}")
    return files


def strip_fences(text: str) -> str:
    """Remove fenced code blocks: their contents are not markdown."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def heading_anchors(path: Path) -> set[str]:
    headings = HEADING_RE.findall(strip_fences(path.read_text()))
    return {github_slug(h) for h in headings}


def check_file(path: Path) -> list[str]:
    """All broken links in one markdown file, as printable messages."""
    problems: list[str] = []
    text = strip_fences(path.read_text())
    for match in LINK_RE.finditer(text):
        # '[t](path "title")' carries an optional title; the path is the
        # first token (paths with literal spaces are not valid markdown
        # without <> wrapping, which these docs do not use).
        tokens = match.group(1).split()
        if not tokens:
            problems.append(f"{path}: empty link target -> [..]({match.group(1)})")
            continue
        target = tokens[0]
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_anchors(resolved):
                problems.append(f"{path}: broken anchor -> {target}")
    return problems


def main(argv: list[str]) -> int:
    targets = argv or DEFAULT_TARGETS
    files = markdown_files(targets)
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    problems = [problem for path in files for problem in check_file(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Calibration dashboard: simulated values vs paper targets.

Run after changing repro/perfmodels/calibration.py; every line shows
measured vs target and the relative error.
"""

from __future__ import annotations

import sys

from repro.common.units import GB
from repro import paperdata
from repro.perfmodels import simulate


def row(label, measured, target, tol=0.15):
    err = abs(measured - target) / target if target else 0.0
    flag = "ok " if err <= tol else "BAD"
    print(f"  [{flag}] {label:<46} measured={measured:8.1f}  target={target:8.1f}  err={100*err:5.1f}%")


def main() -> int:
    print("=== 8GB Text Sort (stated: H=117 S=114 D=69; O=28 map=36 stage0=38) ===")
    runs = {}
    for fw in ("hadoop", "spark", "datampi"):
        runs[fw] = simulate(fw, "text_sort", 8 * GB, executions=1)
        row(f"text_sort 8GB {fw} elapsed", runs[fw].elapsed_sec,
            paperdata.TEXT_SORT_8GB_SEC[fw])
    row("datampi O phase", runs["datampi"].phases.get("o", 0.0), 28.0, 0.25)
    row("hadoop map phase", runs["hadoop"].phases.get("map", 0.0), 36.0, 0.25)
    row("spark stage0", runs["spark"].phases.get("stage0", 0.0), 38.0, 0.25)

    print("=== 8GB Text Sort resource profile (averages over each runtime) ===")
    from repro.perfmodels import get_calibration
    spro = paperdata.SORT_PROFILE
    for fw in ("hadoop", "spark", "datampi"):
        cluster = runs[fw].first.cluster
        t_run = runs[fw].elapsed_sec
        scale = get_calibration(fw).iowait_scale
        row(f"sort {fw} cpu%", cluster.cpu_utilization_pct(0, t_run), spro["cpu_pct"][fw], 0.35)
        row(f"sort {fw} net MB/s", cluster.network_mbps(0, t_run), spro["net_mbps"][fw], 0.35)
        row(f"sort {fw} mem GB", cluster.memory_gb(0, t_run), spro["mem_gb"][fw], 0.35)
        phase = {"hadoop": "map", "spark": "stage0", "datampi": "o"}[fw]
        t0, t1 = runs[fw].first.phases[phase]
        row(f"sort {fw} read MB/s ({phase})", cluster.disk_read_mbps(t0, t1),
            spro["disk_read_phase_mbps"][fw], 0.35)
        row(f"sort {fw} write MB/s", cluster.disk_write_mbps(0, t_run),
            spro["disk_write_mbps"][fw], 0.35)
        row(f"sort {fw} iowait%", scale * cluster.iowait_pct(0, t_run), spro["iowait_pct"][fw], 0.6)

    print("=== 32GB WordCount (stated: H=275 S=130 D=130) ===")
    wruns = {}
    for fw in ("hadoop", "spark", "datampi"):
        wruns[fw] = simulate(fw, "wordcount", 32 * GB, executions=1)
        row(f"wordcount 32GB {fw} elapsed", wruns[fw].elapsed_sec,
            paperdata.WORDCOUNT_32GB_SEC[fw])
    wpro = paperdata.WORDCOUNT_PROFILE
    for fw in ("hadoop", "spark", "datampi"):
        cluster = wruns[fw].first.cluster
        t_run = wruns[fw].elapsed_sec
        row(f"wc {fw} cpu%", cluster.cpu_utilization_pct(0, t_run), wpro["cpu_pct"][fw], 0.35)
        row(f"wc {fw} read MB/s", cluster.disk_read_mbps(0, t_run),
            wpro["disk_read_mbps"][fw], 0.35)
        row(f"wc {fw} mem GB", cluster.memory_gb(0, t_run), wpro["mem_gb"][fw], 0.35)

    print("=== Figure 3 sweeps (improvement ranges) ===")
    for workload, sizes, chart in (
        ("normal_sort", [4, 8, 16, 32], paperdata.FIG3A_NORMAL_SORT),
        ("text_sort", [8, 16, 32, 64], paperdata.FIG3B_TEXT_SORT),
        ("wordcount", [8, 16, 32, 64], paperdata.FIG3C_WORDCOUNT),
        ("grep", [8, 16, 32, 64], paperdata.FIG3D_GREP),
        ("kmeans", [8, 16, 32, 64], paperdata.FIG6A_KMEANS),
        ("naive_bayes", [8, 16, 32, 64], paperdata.FIG6B_NAIVE_BAYES),
    ):
        for size in sizes:
            nbytes = size * GB
            h = simulate("hadoop", workload, nbytes, executions=1)
            d = simulate("datampi", workload, nbytes, executions=1)
            imp = paperdata.improvement(h.elapsed_sec, d.elapsed_sec)
            line = f"{workload} {size}GB H={h.elapsed_sec:7.1f} D={d.elapsed_sec:7.1f} imp={100*imp:4.1f}%"
            if workload in ("text_sort", "wordcount", "grep", "kmeans") and workload != "naive_bayes":
                try:
                    s = simulate("spark", workload, nbytes, executions=1)
                    status = "OOM" if s.failed else f"{s.elapsed_sec:7.1f}"
                    line += f" S={status}"
                except Exception as exc:
                    line += f" S=err({exc})"
            chart_h = chart.get("hadoop", {}).get(nbytes)
            if chart_h:
                line += f"   [chart H={chart_h:.0f} D={chart['datampi'][nbytes]:.0f}]"
            print("   " + line)

    print("=== Small jobs (128MB, 1 slot/node; target H~35 S~15 D~15) ===")
    for workload in ("text_sort", "wordcount", "grep"):
        parts = []
        for fw in ("hadoop", "spark", "datampi"):
            run = simulate(fw, workload, 128 * 1024 * 1024, slots=1, executions=1)
            parts.append(f"{fw}={run.elapsed_sec:5.1f}")
        print(f"   small {workload:<10} " + "  ".join(parts))

    print("=== Spark OOM gates ===")
    for size in (4, 8, 16, 32):
        run = simulate("spark", "normal_sort", size * GB, executions=1)
        print(f"   normal_sort {size}GB spark: {'OOM' if run.failed else 'ran=' + format(run.elapsed_sec, '.0f')}")
    for size in (8, 16, 32, 64):
        run = simulate("spark", "text_sort", size * GB, executions=1)
        print(f"   text_sort {size}GB spark: {'OOM' if run.failed else 'ran=' + format(run.elapsed_sec, '.0f')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
